// Package topology generates GT-ITM-style transit-stub network topologies
// and answers shortest-path distance queries over them.
//
// The paper evaluates proximity-aware load balancing on two ~5000-node
// transit-stub topologies produced by GT-ITM:
//
//   - "ts5k-large": 5 transit domains, 3 transit nodes per transit domain,
//     5 stub domains attached to each transit node, and 60 nodes per stub
//     domain on average — an overlay drawn from a few big stub domains.
//   - "ts5k-small": 120 transit domains, 5 transit nodes per transit
//     domain, 4 stub domains per transit node, 2 nodes per stub domain on
//     average — an overlay scattered across the entire Internet.
//
// Following the paper, each interdomain edge costs 3 latency units and
// each intradomain edge costs 1.
package topology

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"p2plb/internal/par"
)

// NodeID identifies an underlay node.
type NodeID int32

// Kind distinguishes transit from stub nodes.
type Kind uint8

// Node kinds.
const (
	Transit Kind = iota
	Stub
)

func (k Kind) String() string {
	if k == Transit {
		return "transit"
	}
	return "stub"
}

// Weights of the two edge classes in the paper's hop-count convention:
// an interdomain hop counts as 3 units, an intradomain hop as 1. All
// reported transfer distances (Figures 7 and 8) use this metric.
const (
	IntraDomainWeight = 1
	InterDomainWeight = 3
)

// Mean link latencies in milli-units for the two edge classes:
// latency ~ U[0.5, 1.5]·Mean. GT-ITM graphs carry random per-link
// latencies; the landmark measurements (and message timing) use this
// jittered latency metric, while the figures report the deterministic
// hop metric above. The intra/inter ratio is LAN-vs-WAN realistic
// (~1:15), unlike the 3:1 hop-reporting convention.
const (
	IntraDomainLatencyMean = 20
	InterDomainLatencyMean = 300
)

// Node carries a topology node's classification.
type Node struct {
	Kind   Kind
	Domain int // globally unique domain index (transit and stub domains share the numbering)
}

// Edge is one adjacency entry.
type Edge struct {
	To NodeID
	// Weight is the hop-convention distance (1 intra, 3 interdomain).
	Weight int32
	// Latency is the link's latency in milli-units, randomly jittered
	// around Weight·LatencyScale.
	Latency int32
}

// Graph is an undirected weighted transit-stub topology.
type Graph struct {
	nodes   []Node
	adj     [][]Edge
	domains int
	stubs   []NodeID // all stub node ids, ascending
	edges   int
	genRand *rand.Rand // generation-time RNG (latency jitter)
}

// Params configures transit-stub generation.
type Params struct {
	TransitDomains        int     // number of transit domains
	TransitNodesPerDomain int     // transit nodes per transit domain
	StubsPerTransitNode   int     // stub domains attached to each transit node
	StubDomainSizeMean    int     // average nodes per stub domain
	TransitEdgeProb       float64 // extra intra-transit-domain edge probability
	TransitDomainEdgeProb float64 // extra transit-domain interconnection probability (per domain pair)
	StubEdgeProb          float64 // extra intra-stub-domain edge probability
	Seed                  int64   // RNG seed; same Params ⇒ same graph
}

// TS5kLarge returns the "ts5k-large" parameters from the paper with the
// given seed (the paper uses 10 graph instances per topology; vary the
// seed to get them).
func TS5kLarge(seed int64) Params {
	return Params{
		TransitDomains:        5,
		TransitNodesPerDomain: 3,
		StubsPerTransitNode:   5,
		StubDomainSizeMean:    60,
		TransitEdgeProb:       0.6,
		TransitDomainEdgeProb: 0.5,
		StubEdgeProb:          0.42,
		Seed:                  seed,
	}
}

// TS5kSmall returns the "ts5k-small" parameters from the paper.
func TS5kSmall(seed int64) Params {
	return Params{
		TransitDomains:        120,
		TransitNodesPerDomain: 5,
		StubsPerTransitNode:   4,
		StubDomainSizeMean:    2,
		TransitEdgeProb:       0.6,
		TransitDomainEdgeProb: 0.02,
		StubEdgeProb:          0.42,
		Seed:                  seed,
	}
}

// Validate reports whether the parameters can produce a graph.
func (p Params) Validate() error {
	switch {
	case p.TransitDomains < 1:
		return fmt.Errorf("topology: TransitDomains %d < 1", p.TransitDomains)
	case p.TransitNodesPerDomain < 1:
		return fmt.Errorf("topology: TransitNodesPerDomain %d < 1", p.TransitNodesPerDomain)
	case p.StubsPerTransitNode < 0:
		return fmt.Errorf("topology: StubsPerTransitNode %d < 0", p.StubsPerTransitNode)
	case p.StubDomainSizeMean < 1 && p.StubsPerTransitNode > 0:
		return fmt.Errorf("topology: StubDomainSizeMean %d < 1", p.StubDomainSizeMean)
	}
	for _, pr := range []float64{p.TransitEdgeProb, p.TransitDomainEdgeProb, p.StubEdgeProb} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("topology: edge probability %v outside [0,1]", pr)
		}
	}
	return nil
}

// Generate builds the transit-stub graph described by p. The result is
// always connected. Generation is deterministic in p (including Seed).
func Generate(p Params) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &Graph{genRand: rand.New(rand.NewSource(p.Seed ^ 0x5DEECE66D))}

	// Transit nodes first: domain d owns nodes [d*TN, (d+1)*TN).
	tn := p.TransitNodesPerDomain
	for d := 0; d < p.TransitDomains; d++ {
		for i := 0; i < tn; i++ {
			g.nodes = append(g.nodes, Node{Kind: Transit, Domain: d})
		}
	}
	g.domains = p.TransitDomains
	g.adj = make([][]Edge, len(g.nodes))

	transitOf := func(d, i int) NodeID { return NodeID(d*tn + i) }

	// Intra-transit-domain connectivity: spanning path + random extras.
	for d := 0; d < p.TransitDomains; d++ {
		for i := 1; i < tn; i++ {
			g.addEdge(transitOf(d, i-1), transitOf(d, i), IntraDomainWeight)
		}
		for i := 0; i < tn; i++ {
			for j := i + 2; j < tn; j++ {
				if rng.Float64() < p.TransitEdgeProb {
					g.addEdge(transitOf(d, i), transitOf(d, j), IntraDomainWeight)
				}
			}
		}
	}

	// Transit-domain interconnection: a ring of domains guarantees
	// connectivity; extra random domain pairs mimic GT-ITM's random
	// transit graph.
	if p.TransitDomains > 1 {
		ringEdges := p.TransitDomains
		if p.TransitDomains == 2 {
			ringEdges = 1 // a two-domain "ring" is a single link
		}
		for d := 0; d < ringEdges; d++ {
			e := (d + 1) % p.TransitDomains
			g.addEdge(transitOf(d, rng.Intn(tn)), transitOf(e, rng.Intn(tn)), InterDomainWeight)
		}
		for d := 0; d < p.TransitDomains; d++ {
			for e := d + 1; e < p.TransitDomains; e++ {
				if (d+1)%p.TransitDomains == e || (e+1)%p.TransitDomains == d {
					continue // ring already links them
				}
				if rng.Float64() < p.TransitDomainEdgeProb {
					g.addEdge(transitOf(d, rng.Intn(tn)), transitOf(e, rng.Intn(tn)), InterDomainWeight)
				}
			}
		}
	}

	// Stub domains: attached to every transit node.
	for d := 0; d < p.TransitDomains; d++ {
		for i := 0; i < tn; i++ {
			attach := transitOf(d, i)
			for s := 0; s < p.StubsPerTransitNode; s++ {
				size := stubDomainSize(rng, p.StubDomainSizeMean)
				g.addStubDomain(rng, attach, size, p.StubEdgeProb)
			}
		}
	}
	return g, nil
}

// stubDomainSize draws a stub-domain size uniformly from
// [ceil(mean/2), floor(3·mean/2)], which has the requested mean and keeps
// every domain non-empty.
func stubDomainSize(rng *rand.Rand, mean int) int {
	lo := (mean + 1) / 2
	hi := mean * 3 / 2
	if hi < lo {
		hi = lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// addStubDomain appends a connected stub domain of the given size,
// wires it internally (random spanning tree + extra edges with prob
// extraProb) and attaches one random member to the transit node attach.
func (g *Graph) addStubDomain(rng *rand.Rand, attach NodeID, size int, extraProb float64) {
	domain := g.domains
	g.domains++
	base := NodeID(len(g.nodes))
	for i := 0; i < size; i++ {
		g.nodes = append(g.nodes, Node{Kind: Stub, Domain: domain})
		g.adj = append(g.adj, nil)
		g.stubs = append(g.stubs, base+NodeID(i))
	}
	// Random spanning tree: node i links to a uniformly random earlier node.
	for i := 1; i < size; i++ {
		j := rng.Intn(i)
		g.addEdge(base+NodeID(i), base+NodeID(j), IntraDomainWeight)
	}
	// Extra intra-stub edges.
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			if rng.Float64() < extraProb && !g.hasEdge(base+NodeID(i), base+NodeID(j)) {
				g.addEdge(base+NodeID(i), base+NodeID(j), IntraDomainWeight)
			}
		}
	}
	// Attach the domain to its transit node (crosses domains: weight 3).
	g.addEdge(base+NodeID(rng.Intn(size)), attach, InterDomainWeight)
}

func (g *Graph) addEdge(a, b NodeID, w int32) {
	if a == b {
		panic("topology: self loop")
	}
	// Latency jitter: U[0.5, 1.5] of the class mean, so sibling links
	// are distinguishable by latency measurements (as GT-ITM's random
	// link weights are) while the hop metric stays exact.
	mean := float64(IntraDomainLatencyMean)
	if w == InterDomainWeight {
		mean = InterDomainLatencyMean
	}
	lat := int32(mean * (0.5 + g.genRand.Float64()))
	if lat < 1 {
		lat = 1
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Weight: w, Latency: lat})
	g.adj[b] = append(g.adj[b], Edge{To: a, Weight: w, Latency: lat})
	g.edges++
}

func (g *Graph) hasEdge(a, b NodeID) bool {
	for _, e := range g.adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// NumNodes returns the number of underlay nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// NumDomains returns the number of domains (transit + stub).
func (g *Graph) NumDomains() int { return g.domains }

// Node returns the classification of node id.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Neighbors returns the adjacency list of id. The returned slice must
// not be modified.
func (g *Graph) Neighbors(id NodeID) []Edge { return g.adj[id] }

// StubNodes returns all stub node ids in ascending order. The returned
// slice must not be modified; overlay (DHT) nodes are drawn from it.
func (g *Graph) StubNodes() []NodeID { return g.stubs }

// SampleStubNodes returns n distinct stub nodes drawn uniformly without
// replacement using rng. It panics if n exceeds the number of stub nodes.
func (g *Graph) SampleStubNodes(rng *rand.Rand, n int) []NodeID {
	if n > len(g.stubs) {
		panic(fmt.Sprintf("topology: sample of %d from %d stub nodes", n, len(g.stubs)))
	}
	perm := rng.Perm(len(g.stubs))
	out := make([]NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = g.stubs[perm[i]]
	}
	return out
}

// Connected reports whether the graph is connected (used by tests and
// the topogen tool; Generate always returns connected graphs).
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(g.nodes)
}

// Metric selects which edge attribute shortest paths minimize.
type Metric int

// Metrics.
const (
	// HopMetric is the paper's reporting convention: interdomain edges
	// count 3, intradomain edges 1.
	HopMetric Metric = iota
	// LatencyMetric is the jittered link latency, the quantity a real
	// deployment would measure against landmarks.
	LatencyMetric
)

func (m Metric) String() string {
	if m == LatencyMetric {
		return "latency"
	}
	return "hops"
}

func edgeCost(e Edge, m Metric) int32 {
	if m == LatencyMetric {
		return e.Latency
	}
	return e.Weight
}

// ShortestFrom computes single-source shortest-path distances under the
// hop metric. The result slice is indexed by NodeID.
func (g *Graph) ShortestFrom(src NodeID) []int32 {
	return g.ShortestFromMetric(src, HopMetric)
}

// ShortestFromMetric computes single-source shortest-path distances from
// src to every node under the chosen metric, using Dial's bucket
// algorithm for the small-integer hop metric and a binary heap for the
// latency metric.
func (g *Graph) ShortestFromMetric(src NodeID, m Metric) []int32 {
	if m == HopMetric {
		return g.shortestDial(src)
	}
	return g.shortestHeap(src, m)
}

func (g *Graph) shortestDial(src NodeID) []int32 {
	const unreached = int32(-1)
	dist := make([]int32, len(g.nodes))
	for i := range dist {
		dist[i] = unreached
	}
	// Max possible distance bounds the bucket array.
	maxDist := InterDomainWeight * len(g.nodes)
	buckets := make([][]NodeID, maxDist+1)
	dist[src] = 0
	buckets[0] = append(buckets[0], src)
	for d := 0; d <= maxDist; d++ {
		for len(buckets[d]) > 0 {
			v := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			if dist[v] != int32(d) {
				continue // stale entry
			}
			for _, e := range g.adj[v] {
				nd := int32(d) + e.Weight
				if dist[e.To] == unreached || nd < dist[e.To] {
					dist[e.To] = nd
					buckets[nd] = append(buckets[nd], e.To)
				}
			}
		}
	}
	return dist
}

// pqItem is a binary-heap entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist int32
}

func (g *Graph) shortestHeap(src NodeID, m Metric) []int32 {
	const unreached = int32(-1)
	dist := make([]int32, len(g.nodes))
	for i := range dist {
		dist[i] = unreached
	}
	dist[src] = 0
	heap := []pqItem{{src, 0}}
	pop := func() pqItem {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].dist < heap[small].dist {
				small = l
			}
			if r < len(heap) && heap[r].dist < heap[small].dist {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	push := func(it pqItem) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].dist <= heap[i].dist {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for len(heap) > 0 {
		it := pop()
		if it.dist != dist[it.node] {
			continue // stale
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + edgeCost(e, m)
			if dist[e.To] == unreached || nd < dist[e.To] {
				dist[e.To] = nd
				push(pqItem{e.To, nd})
			}
		}
	}
	return dist
}

// Distances caches per-source shortest-path vectors under one metric and
// computes them in parallel on demand. It is safe for concurrent use.
type Distances struct {
	g      *Graph
	metric Metric
	cache  []atomic.Pointer[[]int32] // indexed by source; nil until computed
	locks  []sync.Mutex
}

// NewDistances returns a hop-metric distance oracle over g.
func NewDistances(g *Graph) *Distances { return NewDistancesMetric(g, HopMetric) }

// NewDistancesMetric returns a distance oracle over g under the chosen
// metric.
func NewDistancesMetric(g *Graph, m Metric) *Distances {
	return &Distances{
		g:      g,
		metric: m,
		cache:  make([]atomic.Pointer[[]int32], g.NumNodes()),
		locks:  make([]sync.Mutex, g.NumNodes()),
	}
}

// Metric returns the oracle's metric.
func (d *Distances) Metric() Metric { return d.metric }

// From returns the distance vector from src, computing and caching it on
// first use. Concurrent callers for the same source compute it once.
// The returned slice must not be modified.
func (d *Distances) From(src NodeID) []int32 {
	if p := d.cache[src].Load(); p != nil {
		return *p
	}
	d.locks[src].Lock()
	defer d.locks[src].Unlock()
	if p := d.cache[src].Load(); p != nil {
		return *p
	}
	v := d.g.ShortestFromMetric(src, d.metric)
	d.cache[src].Store(&v)
	return v
}

// Between returns the shortest-path distance between a and b in latency
// units.
func (d *Distances) Between(a, b NodeID) int32 {
	if p := d.cache[a].Load(); p != nil {
		return (*p)[b]
	}
	if p := d.cache[b].Load(); p != nil {
		return (*p)[a]
	}
	return d.From(a)[b]
}

// Precompute fills the cache for every source in srcs, in parallel.
func (d *Distances) Precompute(srcs []NodeID) {
	par.For(len(srcs), 0, func(i int) {
		d.From(srcs[i])
	})
}

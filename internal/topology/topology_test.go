package topology

import (
	"math/rand"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := TS5kLarge(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{TransitDomains: 0, TransitNodesPerDomain: 1},
		{TransitDomains: 1, TransitNodesPerDomain: 0},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubsPerTransitNode: -1},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubsPerTransitNode: 1, StubDomainSizeMean: 0},
		{TransitDomains: 1, TransitNodesPerDomain: 1, TransitEdgeProb: 1.5},
		{TransitDomains: 1, TransitNodesPerDomain: 1, StubEdgeProb: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should fail validation", i)
		}
	}
	if _, err := Generate(bad[0]); err == nil {
		t.Error("Generate must reject invalid params")
	}
}

func TestTS5kLargeShape(t *testing.T) {
	g, err := Generate(TS5kLarge(1))
	if err != nil {
		t.Fatal(err)
	}
	transit, stub := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(NodeID(i)).Kind == Transit {
			transit++
		} else {
			stub++
		}
	}
	if transit != 5*3 {
		t.Errorf("transit nodes = %d, want 15", transit)
	}
	// 75 stub domains averaging 60 nodes: expect roughly 4500 ± 25%.
	if stub < 3300 || stub > 5700 {
		t.Errorf("stub nodes = %d, want ~4500", stub)
	}
	if len(g.StubNodes()) != stub {
		t.Errorf("StubNodes() has %d entries, want %d", len(g.StubNodes()), stub)
	}
	// 5 transit + 75 stub domains.
	if g.NumDomains() != 5+75 {
		t.Errorf("domains = %d, want 80", g.NumDomains())
	}
	if !g.Connected() {
		t.Error("graph must be connected")
	}
}

func TestTS5kSmallShape(t *testing.T) {
	g, err := Generate(TS5kSmall(2))
	if err != nil {
		t.Fatal(err)
	}
	transit := 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(NodeID(i)).Kind == Transit {
			transit++
		}
	}
	if transit != 120*5 {
		t.Errorf("transit nodes = %d, want 600", transit)
	}
	stub := len(g.StubNodes())
	// 2400 stub domains of ~2 nodes each.
	if stub < 3600 || stub > 6000 {
		t.Errorf("stub nodes = %d, want ~4800", stub)
	}
	if g.NumDomains() != 120+120*5*4 {
		t.Errorf("domains = %d, want %d", g.NumDomains(), 120+2400)
	}
	if !g.Connected() {
		t.Error("graph must be connected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(TS5kSmall(7))
	b, _ := Generate(TS5kSmall(7))
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d/%d nodes, %d/%d edges",
			a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
	}
	for i := 0; i < a.NumNodes(); i++ {
		ea, eb := a.Neighbors(NodeID(i)), b.Neighbors(NodeID(i))
		if len(ea) != len(eb) {
			t.Fatalf("node %d degree differs", i)
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("node %d edge %d differs", i, j)
			}
		}
	}
	c, _ := Generate(TS5kSmall(8))
	if c.NumEdges() == a.NumEdges() && c.NumNodes() == a.NumNodes() {
		t.Log("different seeds produced same shape (possible but unlikely)")
	}
}

func TestEdgeWeightsFollowDomainRule(t *testing.T) {
	g, _ := Generate(TS5kLarge(3))
	for i := 0; i < g.NumNodes(); i++ {
		a := NodeID(i)
		for _, e := range g.Neighbors(a) {
			sameDomain := g.Node(a).Domain == g.Node(e.To).Domain
			if sameDomain && e.Weight != IntraDomainWeight {
				t.Fatalf("intradomain edge %d-%d has weight %d", a, e.To, e.Weight)
			}
			if !sameDomain && e.Weight != InterDomainWeight {
				t.Fatalf("interdomain edge %d-%d has weight %d", a, e.To, e.Weight)
			}
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	g, _ := Generate(TS5kSmall(4))
	for i := 0; i < g.NumNodes(); i++ {
		a := NodeID(i)
		for _, e := range g.Neighbors(a) {
			found := false
			for _, back := range g.Neighbors(e.To) {
				if back.To == a && back.Weight == e.Weight {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no symmetric counterpart", a, e.To)
			}
		}
	}
}

func TestShortestFromAgainstBellmanFord(t *testing.T) {
	// Small graph so O(VE) Bellman-Ford is cheap.
	p := Params{
		TransitDomains:        3,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		StubDomainSizeMean:    4,
		TransitEdgeProb:       0.5,
		TransitDomainEdgeProb: 0.5,
		StubEdgeProb:          0.3,
		Seed:                  11,
	}
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	for src := 0; src < n; src += 3 {
		got := g.ShortestFrom(NodeID(src))
		want := bellmanFord(g, NodeID(src))
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("dist(%d,%d) = %d, want %d", src, v, got[v], want[v])
			}
		}
	}
}

func bellmanFord(g *Graph, src NodeID) []int32 {
	const inf = int32(1) << 30
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == inf {
				continue
			}
			for _, e := range g.Neighbors(NodeID(u)) {
				if nd := dist[u] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestShortestPathProperties(t *testing.T) {
	g, _ := Generate(TS5kLarge(5))
	d := g.ShortestFrom(0)
	if d[0] != 0 {
		t.Fatal("self distance nonzero")
	}
	for v, dv := range d {
		if dv < 0 {
			t.Fatalf("node %d unreachable in connected graph", v)
		}
		// Triangle inequality against direct edges.
		for _, e := range g.Neighbors(NodeID(v)) {
			if d[e.To] > dv+e.Weight {
				t.Fatalf("triangle violation: d[%d]=%d > d[%d]+w=%d", e.To, d[e.To], v, dv+e.Weight)
			}
		}
	}
}

func TestIntraStubDistancesShort(t *testing.T) {
	// The ts5k-large reproduction hinges on nodes in the same stub domain
	// being a couple of hops apart (dense stub domains).
	g, _ := Generate(TS5kLarge(6))
	rng := rand.New(rand.NewSource(1))
	stubs := g.StubNodes()
	within2 := 0
	trials := 0
	for trials < 400 {
		a := stubs[rng.Intn(len(stubs))]
		// Find another node in the same domain.
		dom := g.Node(a).Domain
		b := NodeID(-1)
		for attempts := 0; attempts < 200; attempts++ {
			c := stubs[rng.Intn(len(stubs))]
			if c != a && g.Node(c).Domain == dom {
				b = c
				break
			}
		}
		if b < 0 {
			continue
		}
		trials++
		if g.ShortestFrom(a)[b] <= 2 {
			within2++
		}
	}
	if frac := float64(within2) / float64(trials); frac < 0.80 {
		t.Errorf("only %.0f%% of intra-stub pairs within 2 hops; stub domains too sparse", frac*100)
	}
}

func TestInterDomainDistancesLong(t *testing.T) {
	// Nodes in stub domains attached to different transit domains should
	// usually be >= 10 units apart on ts5k-large.
	g, _ := Generate(TS5kLarge(7))
	rng := rand.New(rand.NewSource(2))
	stubs := g.StubNodes()
	dist := NewDistances(g)
	far := 0
	trials := 0
	for trials < 300 {
		a := stubs[rng.Intn(len(stubs))]
		b := stubs[rng.Intn(len(stubs))]
		if g.Node(a).Domain == g.Node(b).Domain {
			continue
		}
		trials++
		if dist.Between(a, b) >= 10 {
			far++
		}
	}
	if frac := float64(far) / float64(trials); frac < 0.6 {
		t.Errorf("only %.0f%% of cross-domain pairs are >=10 units apart", frac*100)
	}
}

func TestDistancesCacheConsistency(t *testing.T) {
	g, _ := Generate(TS5kSmall(9))
	d := NewDistances(g)
	// Concurrent access to overlapping sources must agree with direct
	// computation (run with -race to check synchronization).
	srcs := []NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	d.Precompute(srcs)
	for _, s := range srcs {
		want := g.ShortestFrom(s)
		got := d.From(s)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("cached dist(%d,%d) = %d, want %d", s, v, got[v], want[v])
			}
		}
	}
	if d.Between(3, 100) != d.From(3)[100] {
		t.Error("Between disagrees with From")
	}
	// Between with only the second argument cached.
	d2 := NewDistances(g)
	d2.Precompute([]NodeID{50})
	if d2.Between(40, 50) != g.ShortestFrom(50)[40] {
		t.Error("Between with reversed cache lookup wrong (undirected graphs are symmetric)")
	}
}

func TestSampleStubNodes(t *testing.T) {
	g, _ := Generate(TS5kLarge(10))
	rng := rand.New(rand.NewSource(3))
	sample := g.SampleStubNodes(rng, 4096)
	if len(sample) != 4096 {
		t.Fatalf("sample size %d", len(sample))
	}
	seen := map[NodeID]bool{}
	for _, id := range sample {
		if seen[id] {
			t.Fatal("duplicate in sample")
		}
		seen[id] = true
		if g.Node(id).Kind != Stub {
			t.Fatal("sampled a transit node")
		}
	}
}

func TestSampleStubNodesPanics(t *testing.T) {
	g, _ := Generate(Params{
		TransitDomains: 1, TransitNodesPerDomain: 1,
		StubsPerTransitNode: 1, StubDomainSizeMean: 2, Seed: 1,
	})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample should panic")
		}
	}()
	g.SampleStubNodes(rand.New(rand.NewSource(1)), g.NumNodes()+1)
}

func TestStubDomainSizeMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var sum int
	n := 100000
	for i := 0; i < n; i++ {
		s := stubDomainSize(rng, 60)
		if s < 30 || s > 90 {
			t.Fatalf("size %d outside [30,90]", s)
		}
		sum += s
	}
	mean := float64(sum) / float64(n)
	if mean < 58 || mean > 62 {
		t.Errorf("mean stub size %v, want ~60", mean)
	}
	// Degenerate: mean 1 must still produce non-empty domains.
	for i := 0; i < 100; i++ {
		if s := stubDomainSize(rng, 1); s < 1 {
			t.Fatal("empty stub domain")
		}
	}
}

func TestTwoTransitDomains(t *testing.T) {
	g, err := Generate(Params{
		TransitDomains: 2, TransitNodesPerDomain: 2,
		StubsPerTransitNode: 1, StubDomainSizeMean: 2,
		TransitDomainEdgeProb: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("two-domain graph must be connected")
	}
}

func TestSingleDomainNoStubs(t *testing.T) {
	g, err := Generate(Params{TransitDomains: 1, TransitNodesPerDomain: 4, TransitEdgeProb: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || !g.Connected() {
		t.Fatalf("got %d nodes, connected=%v", g.NumNodes(), g.Connected())
	}
	if len(g.StubNodes()) != 0 {
		t.Fatal("expected no stub nodes")
	}
}

func BenchmarkGenerateTS5kLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(TS5kLarge(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestFromTS5kLarge(b *testing.B) {
	g, _ := Generate(TS5kLarge(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestFrom(NodeID(i % g.NumNodes()))
	}
}

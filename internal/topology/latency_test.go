package topology

import (
	"math/rand"
	"testing"
)

func TestLatencyJitterBounds(t *testing.T) {
	g, _ := Generate(TS5kLarge(21))
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.Neighbors(NodeID(i)) {
			var lo, hi int32
			if e.Weight == IntraDomainWeight {
				lo, hi = IntraDomainLatencyMean/2, IntraDomainLatencyMean*3/2
			} else {
				lo, hi = InterDomainLatencyMean/2, InterDomainLatencyMean*3/2
			}
			if e.Latency < lo || e.Latency > hi {
				t.Fatalf("edge latency %d outside [%d,%d] for weight %d",
					e.Latency, lo, hi, e.Weight)
			}
		}
	}
}

func TestLatencySymmetric(t *testing.T) {
	g, _ := Generate(TS5kSmall(22))
	for i := 0; i < g.NumNodes(); i++ {
		a := NodeID(i)
		for _, e := range g.Neighbors(a) {
			found := false
			for _, back := range g.Neighbors(e.To) {
				if back.To == a && back.Latency == e.Latency {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("latency asymmetric on edge %d-%d", a, e.To)
			}
		}
	}
}

func TestShortestLatencyAgainstBellmanFord(t *testing.T) {
	p := Params{
		TransitDomains:        3,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		StubDomainSizeMean:    5,
		TransitEdgeProb:       0.5,
		TransitDomainEdgeProb: 0.5,
		StubEdgeProb:          0.3,
		Seed:                  23,
	}
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	for src := 0; src < n; src += 2 {
		got := g.ShortestFromMetric(NodeID(src), LatencyMetric)
		want := bellmanFordMetric(g, NodeID(src), LatencyMetric)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("latency dist(%d,%d) = %d, want %d", src, v, got[v], want[v])
			}
		}
	}
}

func bellmanFordMetric(g *Graph, src NodeID, m Metric) []int32 {
	const inf = int32(1) << 30
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == inf {
				continue
			}
			for _, e := range g.Neighbors(NodeID(u)) {
				if nd := dist[u] + edgeCost(e, m); nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestMetricAccessors(t *testing.T) {
	g, _ := Generate(TS5kSmall(24))
	dh := NewDistances(g)
	dl := NewDistancesMetric(g, LatencyMetric)
	if dh.Metric() != HopMetric || dl.Metric() != LatencyMetric {
		t.Fatal("metric accessors wrong")
	}
	if HopMetric.String() != "hops" || LatencyMetric.String() != "latency" {
		t.Fatal("metric strings wrong")
	}
	// The two metrics must disagree in magnitude (latency ~ 20-300x).
	rng := rand.New(rand.NewSource(1))
	stubs := g.StubNodes()
	for i := 0; i < 50; i++ {
		a, b := stubs[rng.Intn(len(stubs))], stubs[rng.Intn(len(stubs))]
		if a == b {
			continue
		}
		h, l := dh.Between(a, b), dl.Between(a, b)
		if h <= 0 || l <= 0 {
			t.Fatal("non-positive distance between distinct nodes")
		}
		if l < h {
			t.Fatalf("latency %d below hop metric %d — scales inverted?", l, h)
		}
	}
}

func TestLatencyCorrelatesWithHops(t *testing.T) {
	// The two metrics measure the same paths at different scales; their
	// ordering should broadly agree (rank correlation on random pairs).
	g, _ := Generate(TS5kLarge(25))
	dh := NewDistances(g)
	dl := NewDistancesMetric(g, LatencyMetric)
	rng := rand.New(rand.NewSource(2))
	stubs := g.StubNodes()
	agree, total := 0, 0
	for i := 0; i < 500; i++ {
		a, b := stubs[rng.Intn(len(stubs))], stubs[rng.Intn(len(stubs))]
		c, d := stubs[rng.Intn(len(stubs))], stubs[rng.Intn(len(stubs))]
		if a == b || c == d {
			continue
		}
		dh1, dh2 := dh.Between(a, b), dh.Between(c, d)
		dl1, dl2 := dl.Between(a, b), dl.Between(c, d)
		if dh1 == dh2 {
			continue
		}
		total++
		if (dh1 < dh2) == (dl1 < dl2) {
			agree++
		}
	}
	if total == 0 {
		t.Skip("no comparable pairs")
	}
	// ±50% per-link jitter dominates small hop differences, so perfect
	// agreement is impossible; require clear correlation.
	if frac := float64(agree) / float64(total); frac < 0.65 {
		t.Errorf("metrics agree on only %.0f%% of pair orderings", frac*100)
	}
}

func BenchmarkShortestLatencyTS5kLarge(b *testing.B) {
	g, _ := Generate(TS5kLarge(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestFromMetric(NodeID(i%g.NumNodes()), LatencyMetric)
	}
}

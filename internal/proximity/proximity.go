// Package proximity generates the proximity information the paper's
// load balancer uses to guide virtual server assignment (§4): landmark
// clustering and the mapping of landmark vectors into the DHT identifier
// space through a Hilbert space-filling curve.
//
// Every participating node measures its distance to a set of m landmark
// nodes (the paper uses m = 15), producing its landmark vector — its
// coordinates in the m-dimensional landmark space. Physically close
// nodes have similar landmark vectors. The landmark space is divided
// into 2^(m·b) grid cells (b bits of resolution per dimension) and each
// cell is numbered by an m-dimensional Hilbert curve; a node's "Hilbert
// number", scaled into the 32-bit identifier space, is the DHT key under
// which it publishes its load-balancing information. The Hilbert curve's
// locality preservation makes physically close nodes publish under
// nearby DHT keys, so their information meets at low levels of the
// K-nary tree.
package proximity

import (
	"fmt"
	"math/rand"
	"sort"

	"p2plb/internal/hilbert"
	"p2plb/internal/ident"
	"p2plb/internal/topology"
)

// DefaultLandmarkCount is the number of landmark nodes the paper uses.
const DefaultLandmarkCount = 15

// DefaultBitsPerDimension gives 2^60 grid cells with 15 landmarks. The
// paper leaves the grid resolution n open ("n controls the number of
// grids used to divide the landmark space"), noting only that smaller n
// increases exact cell collisions. Four bits per dimension separates
// stub domains well under the jittered latency metric while the full
// Hilbert number (kept as the pairing cell identity — see Cell) retains
// the resolution the truncated 32-bit key cannot carry.
const DefaultBitsPerDimension = 4

// Landmarks is a fixed set of landmark nodes with the distance oracle
// needed to measure landmark vectors.
type Landmarks struct {
	ids  []topology.NodeID
	dist *topology.Distances
	// maxDist is the largest observed distance from any landmark to any
	// node; it fixes the quantization range so every node quantizes
	// consistently.
	maxDist int32
	// minPerDim/maxPerDim are each landmark's observed distance range;
	// quantizing within the per-dimension range (instead of [0, max])
	// spreads the grid over the occupied part of the landmark space and
	// sharply reduces false clustering.
	minPerDim []int32
	maxPerDim []int32
}

// ChooseRandom picks m distinct landmark nodes uniformly at random from
// the whole underlay.
func ChooseRandom(g *topology.Graph, dist *topology.Distances, rng *rand.Rand, m int) (*Landmarks, error) {
	if m < 1 || m > g.NumNodes() {
		return nil, fmt.Errorf("proximity: cannot choose %d landmarks from %d nodes", m, g.NumNodes())
	}
	perm := rng.Perm(g.NumNodes())
	ids := make([]topology.NodeID, m)
	for i := 0; i < m; i++ {
		ids[i] = topology.NodeID(perm[i])
	}
	return newLandmarks(g, dist, ids)
}

// ChooseSpread picks m landmarks with a greedy farthest-point heuristic:
// the first is random, each next maximizes its minimum distance to the
// landmarks chosen so far. Spread landmarks discriminate locations
// better than random ones and reduce false clustering.
func ChooseSpread(g *topology.Graph, dist *topology.Distances, rng *rand.Rand, m int) (*Landmarks, error) {
	if m < 1 || m > g.NumNodes() {
		return nil, fmt.Errorf("proximity: cannot choose %d landmarks from %d nodes", m, g.NumNodes())
	}
	n := g.NumNodes()
	ids := make([]topology.NodeID, 0, m)
	first := topology.NodeID(rng.Intn(n))
	ids = append(ids, first)
	minDist := append([]int32(nil), dist.From(first)...)
	for len(ids) < m {
		best, bestD := topology.NodeID(-1), int32(-1)
		for v := 0; v < n; v++ {
			if minDist[v] > bestD {
				best, bestD = topology.NodeID(v), minDist[v]
			}
		}
		ids = append(ids, best)
		for v, d := range dist.From(best) {
			if d < minDist[v] {
				minDist[v] = d
			}
		}
	}
	return newLandmarks(g, dist, ids)
}

func newLandmarks(g *topology.Graph, dist *topology.Distances, ids []topology.NodeID) (*Landmarks, error) {
	seen := map[topology.NodeID]bool{}
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("proximity: duplicate landmark %d", id)
		}
		seen[id] = true
	}
	l := &Landmarks{
		ids:       ids,
		dist:      dist,
		minPerDim: make([]int32, len(ids)),
		maxPerDim: make([]int32, len(ids)),
	}
	dist.Precompute(ids)
	for i, id := range ids {
		vec := dist.From(id)
		min, max := vec[0], vec[0]
		for _, d := range vec {
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		l.minPerDim[i], l.maxPerDim[i] = min, max
		if max > l.maxDist {
			l.maxDist = max
		}
	}
	return l, nil
}

// FromIDs builds a landmark set from explicit node ids (tests,
// deterministic setups).
func FromIDs(g *topology.Graph, dist *topology.Distances, ids []topology.NodeID) (*Landmarks, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("proximity: empty landmark set")
	}
	for _, id := range ids {
		if int(id) < 0 || int(id) >= g.NumNodes() {
			return nil, fmt.Errorf("proximity: landmark %d out of range", id)
		}
	}
	cp := append([]topology.NodeID(nil), ids...)
	return newLandmarks(g, dist, cp)
}

// Count returns the number of landmarks (the landmark-space dimension).
func (l *Landmarks) Count() int { return len(l.ids) }

// IDs returns the landmark node ids. The returned slice must not be
// modified.
func (l *Landmarks) IDs() []topology.NodeID { return l.ids }

// MaxDistance returns the largest observed landmark-to-node distance.
func (l *Landmarks) MaxDistance() int32 { return l.maxDist }

// DimRange returns the observed [min, max] distance range of dimension i
// (the quantization range for that landmark).
func (l *Landmarks) DimRange(i int) (min, max int32) {
	return l.minPerDim[i], l.maxPerDim[i]
}

// Vector returns node n's landmark vector: its distance to each
// landmark, in latency units.
func (l *Landmarks) Vector(n topology.NodeID) []int32 {
	v := make([]int32, len(l.ids))
	for i, lm := range l.ids {
		v[i] = l.dist.From(lm)[n]
	}
	return v
}

// Mapper maps underlay nodes to DHT keys via landmark vectors and a
// Hilbert curve.
type Mapper struct {
	lm    *Landmarks
	curve *hilbert.Curve
	bits  int
	// edges, when non-nil, holds per-dimension quantile bucket edges:
	// edges[dim][k] is the smallest distance quantized to level k+1.
	edges [][]int32
}

// NewMapper returns a Mapper with b bits of grid resolution per
// landmark dimension. The Hilbert index (Count()·b bits) must fit in 64
// bits.
func NewMapper(lm *Landmarks, b int) (*Mapper, error) {
	curve, err := hilbert.New(lm.Count(), b)
	if err != nil {
		return nil, err
	}
	return &Mapper{lm: lm, curve: curve, bits: b}, nil
}

// UseQuantileGrid switches the mapper from equal-size grid cells to
// equal-mass cells: per dimension, bucket edges are placed at the
// quantiles of the sample's distance distribution, so each of the
// 2^bits levels holds roughly the same number of sample nodes. This
// spreads the occupied cells over the whole Hilbert curve (and hence
// over the whole identifier space), which keeps rendezvous pools
// physically pure; with the paper's equal-size grids most of the
// population shares a handful of cells. The sample should be
// representative of the participating nodes (all overlay members here).
func (m *Mapper) UseQuantileGrid(sample []topology.NodeID) error {
	if len(sample) == 0 {
		return fmt.Errorf("proximity: empty quantile sample")
	}
	levels := 1 << uint(m.bits)
	m.edges = make([][]int32, m.lm.Count())
	dists := make([]int32, len(sample))
	for dim, lmID := range m.lm.ids {
		vec := m.lm.dist.From(lmID)
		for i, n := range sample {
			dists[i] = vec[n]
		}
		sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })
		edges := make([]int32, levels-1)
		for k := 1; k < levels; k++ {
			edges[k-1] = dists[k*len(dists)/levels]
		}
		m.edges[dim] = edges
	}
	return nil
}

// Quantize maps one raw landmark distance in dimension dim into a grid
// coordinate in [0, 2^bits). By default the dimension's occupied range
// [min, max] is divided into 2^bits equal-size cells; after
// UseQuantileGrid, cells hold equal sample mass instead.
func (m *Mapper) Quantize(dim int, d int32) uint32 {
	if m.edges != nil {
		edges := m.edges[dim]
		// First level whose edge exceeds d.
		q := sort.Search(len(edges), func(i int) bool { return edges[i] > d })
		return uint32(q)
	}
	levels := uint32(1) << uint(m.bits)
	lo, hi := m.lm.minPerDim[dim], m.lm.maxPerDim[dim]
	if d < lo {
		d = lo
	}
	if hi <= lo {
		return 0
	}
	q := uint64(d-lo) * uint64(levels) / uint64(hi-lo+1)
	if q >= uint64(levels) {
		q = uint64(levels) - 1
	}
	return uint32(q)
}

// GridCoords returns node n's quantized landmark-space grid cell.
func (m *Mapper) GridCoords(n topology.NodeID) []uint32 {
	raw := m.lm.Vector(n)
	coords := make([]uint32, len(raw))
	for i, d := range raw {
		coords[i] = m.Quantize(i, d)
	}
	return coords
}

// HilbertNumber returns node n's Hilbert number: the curve index of its
// landmark-space grid cell.
func (m *Mapper) HilbertNumber(n topology.NodeID) uint64 {
	return m.curve.Encode(m.GridCoords(n))
}

// Cell returns the full-resolution proximity cell identity (the
// untruncated Hilbert number). It refines Key: nodes with equal cells
// have equal keys.
func (m *Mapper) Cell(n topology.NodeID) uint64 { return m.HilbertNumber(n) }

// Key returns node n's DHT key: its Hilbert number scaled into the
// 32-bit identifier space (order-preserving, so Hilbert locality carries
// over to the ring).
func (m *Mapper) Key(n topology.NodeID) ident.ID {
	h := m.HilbertNumber(n)
	idxBits := m.curve.IndexBits()
	if idxBits >= ident.Bits {
		return ident.ID(h >> uint(idxBits-ident.Bits))
	}
	return ident.ID(h << uint(ident.Bits-idxBits))
}

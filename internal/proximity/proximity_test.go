package proximity

import (
	"math/rand"
	"testing"

	"p2plb/internal/ident"
	"p2plb/internal/topology"
)

func testGraph(t *testing.T, seed int64) (*topology.Graph, *topology.Distances) {
	t.Helper()
	g, err := topology.Generate(topology.TS5kLarge(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g, topology.NewDistances(g)
}

func smallGraph(t *testing.T, seed int64) (*topology.Graph, *topology.Distances) {
	t.Helper()
	g, err := topology.Generate(topology.Params{
		TransitDomains:        3,
		TransitNodesPerDomain: 2,
		StubsPerTransitNode:   2,
		StubDomainSizeMean:    8,
		TransitEdgeProb:       0.5,
		TransitDomainEdgeProb: 0.5,
		StubEdgeProb:          0.4,
		Seed:                  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, topology.NewDistances(g)
}

func TestChooseRandomDistinct(t *testing.T) {
	g, d := smallGraph(t, 1)
	rng := rand.New(rand.NewSource(1))
	lm, err := ChooseRandom(g, d, rng, 15)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Count() != 15 {
		t.Fatalf("Count = %d", lm.Count())
	}
	seen := map[topology.NodeID]bool{}
	for _, id := range lm.IDs() {
		if seen[id] {
			t.Fatal("duplicate landmark")
		}
		seen[id] = true
	}
	if lm.MaxDistance() <= 0 {
		t.Fatal("MaxDistance not computed")
	}
}

func TestChooseErrors(t *testing.T) {
	g, d := smallGraph(t, 2)
	rng := rand.New(rand.NewSource(1))
	if _, err := ChooseRandom(g, d, rng, 0); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := ChooseRandom(g, d, rng, g.NumNodes()+1); err == nil {
		t.Error("too many landmarks should fail")
	}
	if _, err := ChooseSpread(g, d, rng, 0); err == nil {
		t.Error("spread m=0 should fail")
	}
	if _, err := FromIDs(g, d, nil); err == nil {
		t.Error("empty FromIDs should fail")
	}
	if _, err := FromIDs(g, d, []topology.NodeID{0, 0}); err == nil {
		t.Error("duplicate FromIDs should fail")
	}
	if _, err := FromIDs(g, d, []topology.NodeID{topology.NodeID(g.NumNodes())}); err == nil {
		t.Error("out-of-range FromIDs should fail")
	}
}

func TestChooseSpreadSeparation(t *testing.T) {
	g, d := smallGraph(t, 3)
	rng := rand.New(rand.NewSource(2))
	spread, err := ChooseSpread(g, d, rng, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Spread landmarks should be pairwise distinct and at positive
	// distance from each other.
	ids := spread.IDs()
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[i] == ids[j] {
				t.Fatal("spread chose duplicate landmarks")
			}
			if d.Between(ids[i], ids[j]) == 0 {
				t.Fatal("spread chose co-located landmarks")
			}
		}
	}
}

func TestVectorMatchesDistances(t *testing.T) {
	g, d := smallGraph(t, 4)
	lm, err := FromIDs(g, d, []topology.NodeID{0, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < g.NumNodes(); n += 7 {
		v := lm.Vector(topology.NodeID(n))
		if len(v) != 3 {
			t.Fatal("wrong vector length")
		}
		for i, id := range lm.IDs() {
			if v[i] != d.Between(id, topology.NodeID(n)) {
				t.Fatalf("vector[%d] = %d, want %d", i, v[i], d.Between(id, topology.NodeID(n)))
			}
		}
	}
	// A landmark's own vector has a zero at its own position.
	v := lm.Vector(5)
	if v[1] != 0 {
		t.Fatalf("landmark self-distance = %d", v[1])
	}
}

func TestQuantizeBounds(t *testing.T) {
	g, d := smallGraph(t, 5)
	rng := rand.New(rand.NewSource(3))
	lm, _ := ChooseRandom(g, d, rng, 4)
	m, err := NewMapper(lm, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := lm.DimRange(0)
	if lo > hi {
		t.Fatalf("DimRange inverted: %d > %d", lo, hi)
	}
	if q := m.Quantize(0, lo); q != 0 {
		t.Errorf("Quantize(min) = %d, want 0", q)
	}
	if q := m.Quantize(0, hi); q != 3 {
		t.Errorf("Quantize(max) = %d, want 3", q)
	}
	if q := m.Quantize(0, hi*10); q != 3 {
		t.Errorf("Quantize(beyond max) = %d, want clamp to 3", q)
	}
	if q := m.Quantize(0, lo-5); q != 0 {
		t.Errorf("Quantize(below min) = %d, want 0", q)
	}
	// Monotone.
	prev := uint32(0)
	for dist := lo; dist <= hi; dist++ {
		q := m.Quantize(0, dist)
		if q < prev {
			t.Fatalf("Quantize not monotone at %d", dist)
		}
		prev = q
	}
}

func TestMapperDeterministic(t *testing.T) {
	g, d := testGraph(t, 6)
	rng := rand.New(rand.NewSource(4))
	lm, _ := ChooseSpread(g, d, rng, DefaultLandmarkCount)
	m, err := NewMapper(lm, DefaultBitsPerDimension)
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubNodes()
	for i := 0; i < 50; i++ {
		n := stubs[i*37%len(stubs)]
		if m.Key(n) != m.Key(n) {
			t.Fatal("Key not deterministic")
		}
	}
}

func TestSameStubDomainSameOrCloseKeys(t *testing.T) {
	// The paper: "Nodes in a stub domain have close (or even same)
	// Hilbert numbers." Verify same-domain pairs collide in key space
	// far more than cross-domain pairs.
	g, d := testGraph(t, 7)
	rng := rand.New(rand.NewSource(5))
	lm, err := ChooseSpread(g, d, rng, DefaultLandmarkCount)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapper(lm, DefaultBitsPerDimension)
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubNodes()
	sameEqual, sameTotal := 0, 0
	crossEqual, crossTotal := 0, 0
	for trials := 0; trials < 3000; trials++ {
		a := stubs[rng.Intn(len(stubs))]
		b := stubs[rng.Intn(len(stubs))]
		if a == b {
			continue
		}
		ka, kb := m.HilbertNumber(a), m.HilbertNumber(b)
		if g.Node(a).Domain == g.Node(b).Domain {
			sameTotal++
			if ka == kb {
				sameEqual++
			}
		} else {
			crossTotal++
			if ka == kb {
				crossEqual++
			}
		}
	}
	if sameTotal == 0 || crossTotal == 0 {
		t.Skip("insufficient pairs sampled")
	}
	sameFrac := float64(sameEqual) / float64(sameTotal)
	crossFrac := float64(crossEqual) / float64(crossTotal)
	// Quantization boundaries split some stub domains across grid cells,
	// so same-domain pairs do not always collide exactly — but they must
	// collide far more often than cross-domain pairs (the "close or even
	// same Hilbert numbers" property).
	if sameFrac < 0.15 {
		t.Errorf("same-domain Hilbert collision rate %.2f, want >= 0.15", sameFrac)
	}
	if crossFrac*3 > sameFrac {
		t.Errorf("cross-domain collision rate %.2f too close to same-domain %.2f",
			crossFrac, sameFrac)
	}
}

func TestKeyLocalityVersusPhysicalDistance(t *testing.T) {
	// Physically close node pairs should map to closer DHT keys than
	// physically distant pairs, on average.
	g, d := testGraph(t, 8)
	rng := rand.New(rand.NewSource(6))
	lm, _ := ChooseSpread(g, d, rng, DefaultLandmarkCount)
	m, _ := NewMapper(lm, DefaultBitsPerDimension)
	stubs := g.StubNodes()
	var nearKeyDist, farKeyDist float64
	nearCount, farCount := 0, 0
	for trials := 0; trials < 4000; trials++ {
		a := stubs[rng.Intn(len(stubs))]
		b := stubs[rng.Intn(len(stubs))]
		if a == b {
			continue
		}
		ka, kb := m.Key(a), m.Key(b)
		keyGap := float64(minDist(ka, kb))
		if d.Between(a, b) <= 3 {
			nearKeyDist += keyGap
			nearCount++
		} else if d.Between(a, b) >= 12 {
			farKeyDist += keyGap
			farCount++
		}
	}
	if nearCount < 20 || farCount < 20 {
		t.Skip("insufficient samples")
	}
	nearMean := nearKeyDist / float64(nearCount)
	farMean := farKeyDist / float64(farCount)
	if nearMean*2 > farMean {
		t.Errorf("key locality weak: near mean gap %.3g vs far mean gap %.3g", nearMean, farMean)
	}
}

func minDist(a, b ident.ID) uint64 {
	d1 := a.Dist(b)
	d2 := b.Dist(a)
	if d1 < d2 {
		return d1
	}
	return d2
}

func TestKeyScalingCoversSpace(t *testing.T) {
	// Keys from a 30-bit Hilbert index should spread over the high bits
	// of the 32-bit space, not cluster at the bottom.
	g, d := testGraph(t, 9)
	rng := rand.New(rand.NewSource(7))
	lm, _ := ChooseSpread(g, d, rng, DefaultLandmarkCount)
	m, _ := NewMapper(lm, DefaultBitsPerDimension)
	var maxKey ident.ID
	for _, n := range g.StubNodes()[:500] {
		if k := m.Key(n); k > maxKey { //lbvet:ignore identcompare max over keys as plain integers to check Hilbert scaling
			maxKey = k
		}
	}
	if maxKey < 1<<28 { //lbvet:ignore identcompare plain integer magnitude bound, not ring arithmetic
		t.Errorf("keys cluster low (max %s); scaling wrong?", maxKey)
	}
}

func TestMapperBitsTooLarge(t *testing.T) {
	g, d := smallGraph(t, 10)
	rng := rand.New(rand.NewSource(8))
	lm, _ := ChooseRandom(g, d, rng, 15)
	if _, err := NewMapper(lm, 5); err == nil { // 75 bits > 64
		t.Fatal("oversized curve should fail")
	}
}

func BenchmarkMapperKey(b *testing.B) {
	g, err := topology.Generate(topology.TS5kLarge(1))
	if err != nil {
		b.Fatal(err)
	}
	d := topology.NewDistances(g)
	rng := rand.New(rand.NewSource(1))
	lm, _ := ChooseSpread(g, d, rng, DefaultLandmarkCount)
	m, _ := NewMapper(lm, DefaultBitsPerDimension)
	stubs := g.StubNodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Key(stubs[i%len(stubs)])
	}
}

// Package objects grounds virtual-server loads in an object-level
// storage model: objects are hashed into the identifier space, each is
// served by the virtual server owning its key, and a virtual server's
// load is the sum of its objects' loads.
//
// This is the paper's own justification for the Gaussian workload
// (§5.1): "the Gaussian distribution would result if the load of a
// virtual server is attributed to a large number of small objects it
// stores and the individual loads on these objects are independent."
// The package lets experiments run with real object populations instead
// of sampled VS loads, and provides the churn (insert/delete) that
// drifts loads between balancing rounds — the regime the daemon
// experiments exercise.
package objects

import (
	"fmt"
	"math/rand"
	"sort"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
)

// Object is one stored item.
type Object struct {
	Key  ident.ID
	Load float64
}

// Store maintains an object population over a ring and keeps the
// virtual servers' Load fields equal to the sum of their objects'
// loads.
type Store struct {
	ring *chord.Ring
	objs []Object // sorted by Key
}

// NewStore returns an empty store over ring.
func NewStore(ring *chord.Ring) *Store {
	return &Store{ring: ring}
}

// Len returns the number of stored objects.
func (s *Store) Len() int { return len(s.objs) }

// TotalLoad returns the sum of all object loads.
func (s *Store) TotalLoad() float64 {
	var t float64
	for _, o := range s.objs {
		t += o.Load
	}
	return t
}

// Insert stores an object and credits its load to the owning virtual
// server.
func (s *Store) Insert(o Object) error {
	if o.Load < 0 {
		return fmt.Errorf("objects: negative load %v", o.Load)
	}
	vs := s.ring.Successor(o.Key)
	if vs == nil {
		return fmt.Errorf("objects: empty ring")
	}
	pos := sort.Search(len(s.objs), func(i int) bool { return s.objs[i].Key >= o.Key }) //lbvet:ignore identcompare insertion point in the canonical Key-sorted object array
	s.objs = append(s.objs, Object{})
	copy(s.objs[pos+1:], s.objs[pos:])
	s.objs[pos] = o
	vs.Load += o.Load
	return nil
}

// BulkInsert stores a batch of objects in one sort-and-merge pass.
// Semantically it equals calling Insert on each object in order — loads
// are credited to owners in the batch's given order, so the float sums
// match an Insert loop bit for bit — but it replaces the per-object
// O(n) copy-insert with one O(m log m) sort of the batch and a single
// linear merge into the key-sorted array. Populating millions of
// objects goes from quadratic to linearithmic; see BenchmarkInsertLoop
// vs BenchmarkBulkInsert.
func (s *Store) BulkInsert(objs []Object) error {
	if len(objs) == 0 {
		return nil
	}
	if s.ring.NumVServers() == 0 {
		return fmt.Errorf("objects: empty ring")
	}
	for _, o := range objs {
		if o.Load < 0 {
			return fmt.Errorf("objects: negative load %v", o.Load)
		}
	}
	// Credit owners in the caller's order, before sorting, so a caller
	// that switches from an Insert loop to BulkInsert sees identical
	// virtual-server loads (float addition is order-sensitive).
	for _, o := range objs {
		s.ring.Successor(o.Key).Load += o.Load
	}
	batch := make([]Object, len(objs))
	copy(batch, objs)
	sort.Slice(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key }) //lbvet:ignore identcompare canonical Key-sorted order for the object array
	if len(s.objs) == 0 {
		s.objs = batch
		return nil
	}
	merged := make([]Object, 0, len(s.objs)+len(batch))
	i, j := 0, 0
	for i < len(s.objs) && j < len(batch) {
		if s.objs[i].Key <= batch[j].Key { //lbvet:ignore identcompare sorted merge of two canonically Key-sorted arrays
			merged = append(merged, s.objs[i])
			i++
		} else {
			merged = append(merged, batch[j])
			j++
		}
	}
	merged = append(merged, s.objs[i:]...)
	merged = append(merged, batch[j:]...)
	s.objs = merged
	return nil
}

// RemoveAt deletes the i-th object (in key order) and debits its load.
func (s *Store) RemoveAt(i int) (Object, error) {
	if i < 0 || i >= len(s.objs) {
		return Object{}, fmt.Errorf("objects: index %d out of range", i)
	}
	o := s.objs[i]
	s.objs = append(s.objs[:i], s.objs[i+1:]...)
	if vs := s.ring.Successor(o.Key); vs != nil {
		vs.Load -= o.Load
		if vs.Load < 0 {
			vs.Load = 0 // float dust
		}
	}
	return o, nil
}

// Objects returns the stored objects in key order. The returned slice
// must not be modified.
func (s *Store) Objects() []Object { return s.objs }

// SyncLoads recomputes every virtual server's load from scratch by
// scanning the object population once — the authoritative load
// assignment after ring membership changed (a removed virtual server's
// objects belong to its successor). Call it after churn, before a
// balancing round.
func (s *Store) SyncLoads() {
	vss := s.ring.VServers()
	for _, vs := range vss {
		vs.Load = 0
	}
	if len(vss) == 0 {
		return
	}
	// Objects and virtual servers are both sorted by identifier: merge.
	// Object o belongs to the first VS with ID >= o.Key (wrapping).
	i := 0
	for _, o := range s.objs {
		for i < len(vss) && vss[i].ID < o.Key { //lbvet:ignore identcompare sorted-merge scan over two canonically sorted arrays; i==len wrap handled below
			i++
		}
		if i == len(vss) {
			// Wraps around to the first VS.
			vss[0].Load += o.Load
			continue
		}
		vss[i].Load += o.Load
	}
}

// CheckLoads verifies that every virtual server's Load equals the sum
// of its objects' loads (within eps); it returns an error naming the
// first mismatch. Tests and long-running simulations call it to catch
// accounting drift.
func (s *Store) CheckLoads(eps float64) error {
	want := make(map[*chord.VServer]float64)
	for _, o := range s.objs {
		want[s.ring.Successor(o.Key)] += o.Load
	}
	for _, vs := range s.ring.VServers() {
		diff := vs.Load - want[vs]
		if diff < -eps || diff > eps {
			return fmt.Errorf("objects: VS %s load %v, objects sum to %v", vs.ID, vs.Load, want[vs])
		}
	}
	return nil
}

// Populate bulk-inserts n objects with keys drawn uniformly from the
// identifier space and loads drawn from loadFn, then re-derives every
// virtual server's load in one pass (much faster than n Inserts).
func (s *Store) Populate(rng *rand.Rand, n int, loadFn func(*rand.Rand) float64) error {
	if s.ring.NumVServers() == 0 {
		return fmt.Errorf("objects: empty ring")
	}
	for i := 0; i < n; i++ {
		load := loadFn(rng)
		if load < 0 {
			return fmt.Errorf("objects: negative load %v", load)
		}
		s.objs = append(s.objs, Object{Key: ident.ID(rng.Uint32()), Load: load})
	}
	sort.Slice(s.objs, func(i, j int) bool { return s.objs[i].Key < s.objs[j].Key }) //lbvet:ignore identcompare canonical Key-sorted order for the object array
	s.SyncLoads()
	return nil
}

// Drift models workload change between balancing rounds: it removes
// `churn` uniformly random objects and inserts `churn` fresh ones with
// loads from loadFn. The total object count is preserved.
func (s *Store) Drift(rng *rand.Rand, churn int, loadFn func(*rand.Rand) float64) error {
	if churn > len(s.objs) {
		churn = len(s.objs)
	}
	for i := 0; i < churn; i++ {
		if _, err := s.RemoveAt(rng.Intn(len(s.objs))); err != nil {
			return err
		}
	}
	for i := 0; i < churn; i++ {
		if err := s.Insert(Object{
			Key:  ident.ID(rng.Uint32()),
			Load: loadFn(rng),
		}); err != nil {
			return err
		}
	}
	return nil
}

// ZipfLoads returns a loadFn with Zipf-distributed object popularity —
// a few hot objects and a long cold tail, the standard P2P object
// popularity model. Ranks are drawn from Zipf(s, v) over [0, imax];
// an object of rank r gets load proportional to 1/(r+1), scaled so the
// expected load is approximately mean.
func ZipfLoads(rng *rand.Rand, s, v float64, imax uint64, mean float64) func(*rand.Rand) float64 {
	z := rand.NewZipf(rng, s, v, imax)
	// E[1/(rank+1)] normalization: estimate once by sampling.
	var est float64
	const probes = 4096
	for i := 0; i < probes; i++ {
		est += 1 / (float64(z.Uint64()) + 1)
	}
	est /= probes
	return func(*rand.Rand) float64 {
		return mean / est / (float64(z.Uint64()) + 1)
	}
}

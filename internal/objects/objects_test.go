package objects

import (
	"math"
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/ident"
	"p2plb/internal/ktree"
	"p2plb/internal/sim"
	"p2plb/internal/workload"
)

func ringFixture(seed int64, nodes, vsPer int) *chord.Ring {
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	profile := workload.GnutellaProfile()
	for i := 0; i < nodes; i++ {
		ring.AddNode(-1, profile.Sample(eng.Rand()), vsPer)
	}
	return ring
}

func TestInsertRemoveAccounting(t *testing.T) {
	ring := ringFixture(1, 16, 4)
	s := NewStore(ring)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if err := s.Insert(Object{Key: ident.ID(rng.Uint32()), Load: rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.CheckLoads(1e-9); err != nil {
		t.Fatal(err)
	}
	total := s.TotalLoad()
	var ringTotal float64
	for _, vs := range ring.VServers() {
		ringTotal += vs.Load
	}
	if math.Abs(total-ringTotal) > 1e-6 {
		t.Fatalf("store total %v != ring total %v", total, ringTotal)
	}
	// Remove half.
	for i := 0; i < 500; i++ {
		if _, err := s.RemoveAt(rng.Intn(s.Len())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	ring := ringFixture(2, 4, 2)
	s := NewStore(ring)
	if err := s.Insert(Object{Key: 1, Load: -1}); err == nil {
		t.Error("negative load should fail")
	}
	empty := NewStore(chord.NewRing(sim.NewEngine(1), chord.Config{}))
	if err := empty.Insert(Object{Key: 1, Load: 1}); err == nil {
		t.Error("empty ring should fail")
	}
	if _, err := s.RemoveAt(0); err == nil {
		t.Error("RemoveAt on empty store should fail")
	}
	if _, err := s.RemoveAt(-1); err == nil {
		t.Error("negative index should fail")
	}
}

func TestObjectsSortedByKey(t *testing.T) {
	ring := ringFixture(3, 8, 3)
	s := NewStore(ring)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		s.Insert(Object{Key: ident.ID(rng.Uint32()), Load: 1})
	}
	objs := s.Objects()
	for i := 1; i < len(objs); i++ {
		if objs[i].Key < objs[i-1].Key { //lbvet:ignore identcompare asserts the store's canonical sorted order, a total-order property
			t.Fatal("objects not sorted")
		}
	}
}

func TestSyncLoadsAfterChurn(t *testing.T) {
	ring := ringFixture(4, 32, 4)
	s := NewStore(ring)
	rng := rand.New(rand.NewSource(3))
	s.Populate(rng, 5000, func(r *rand.Rand) float64 { return r.Float64() })
	if err := s.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
	// Kill nodes: their VSs vanish, regions (and objects) fall to
	// successors. Ring absorbs the raw load; SyncLoads must agree with
	// a from-scratch recomputation.
	alive := ring.AliveNodes()
	for i := 0; i < 8; i++ {
		ring.RemoveNode(alive[i])
	}
	s.SyncLoads()
	if err := s.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalLoad()-ringLoad(ring)) > 1e-6 {
		t.Fatal("total load mismatch after churn sync")
	}
	// New nodes join: regions split; objects must be re-credited.
	for i := 0; i < 8; i++ {
		ring.AddNode(-1, 100, 4)
	}
	s.SyncLoads()
	if err := s.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
}

func ringLoad(r *chord.Ring) float64 {
	var t float64
	for _, vs := range r.VServers() {
		t += vs.Load
	}
	return t
}

func TestSyncLoadsWrapAround(t *testing.T) {
	// Objects with keys above the highest VS id must wrap to the first.
	eng := sim.NewEngine(1)
	ring := chord.NewRing(eng, chord.Config{})
	ring.AddNodeWithIDs(-1, 10, []ident.ID{1000, 2000})
	s := NewStore(ring)
	s.Insert(Object{Key: 3000, Load: 7}) // wraps to VS 1000
	s.Insert(Object{Key: 1500, Load: 5}) // VS 2000
	s.SyncLoads()
	vss := ring.VServers()
	if vss[0].Load != 7 || vss[1].Load != 5 {
		t.Fatalf("wrap-around credit wrong: %v / %v", vss[0].Load, vss[1].Load)
	}
}

func TestDriftPreservesCountAndAccounting(t *testing.T) {
	ring := ringFixture(5, 16, 4)
	s := NewStore(ring)
	rng := rand.New(rand.NewSource(4))
	s.Populate(rng, 2000, func(r *rand.Rand) float64 { return r.Float64() * 5 })
	for i := 0; i < 10; i++ {
		if err := s.Drift(rng, 200, func(r *rand.Rand) float64 { return r.Float64() * 5 }); err != nil {
			t.Fatal(err)
		}
		if s.Len() != 2000 {
			t.Fatalf("drift changed object count: %d", s.Len())
		}
	}
	if err := s.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestManySmallObjectsGiveGaussianLikeVSLoads(t *testing.T) {
	// The paper's §5.1 justification: VS load = sum of many small
	// independent object loads ⇒ approximately Gaussian with mean μ·f.
	ring := ringFixture(6, 64, 5)
	s := NewStore(ring)
	rng := rand.New(rand.NewSource(5))
	const objCount = 200000
	const objMean = 0.5
	s.Populate(rng, objCount, func(r *rand.Rand) float64 { return r.Float64() }) // mean 0.5
	mu := objCount * objMean
	// Check E[VS load] ≈ μ·f over coarse f-buckets.
	var relErr float64
	checked := 0
	for _, vs := range ring.VServers() {
		f := ring.RegionOf(vs).Fraction()
		want := mu * f
		if want < 50 {
			continue // too few objects for the CLT regime
		}
		relErr += math.Abs(vs.Load-want) / want
		checked++
	}
	if checked == 0 {
		t.Skip("no VS large enough")
	}
	if avg := relErr / float64(checked); avg > 0.15 {
		t.Errorf("mean relative deviation from μ·f is %.3f, want < 0.15", avg)
	}
}

func TestZipfLoadsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	loadFn := ZipfLoads(rng, 1.2, 1, 1<<16, 10)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		v := loadFn(rng)
		if v <= 0 {
			t.Fatal("non-positive load")
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 5 || mean > 20 {
		t.Errorf("Zipf mean %v, want ~10", mean)
	}
}

func TestObjectBackedBalancingRound(t *testing.T) {
	// End-to-end: object population → VS loads → balancing round →
	// loads still consistent (transfers move whole VSs with their
	// objects' regions intact).
	ring := ringFixture(7, 128, 5)
	s := NewStore(ring)
	rng := rand.New(rand.NewSource(7))
	s.Populate(rng, 50000, func(r *rand.Rand) float64 { return r.Float64() })
	tree, err := ktree.New(ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	bal, err := core.NewBalancer(ring, tree, core.Config{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bal.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.HeavyAfter != 0 {
		t.Errorf("%d heavy remain", res.HeavyAfter)
	}
	// Transfers do not change regions, so object accounting must hold
	// without a resync.
	if err := s.CheckLoads(1e-6); err != nil {
		t.Fatal(err)
	}
}

package objects

import (
	"math/rand"
	"testing"

	"p2plb/internal/chord"
	"p2plb/internal/ident"
	"p2plb/internal/sim"
)

func randomBatch(rng *rand.Rand, n int) []Object {
	objs := make([]Object, n)
	for i := range objs {
		objs[i] = Object{Key: ident.ID(rng.Uint32()), Load: rng.Float64() * 10}
	}
	return objs
}

// BulkInsert must be observationally identical to an Insert loop over
// the same batch: same key-sorted object array, bit-identical
// virtual-server loads (credited in the same order), on both empty and
// pre-populated stores.
func TestBulkInsertMatchesInsertLoop(t *testing.T) {
	for _, preload := range []int{0, 500} {
		ringA := ringFixture(1, 16, 4)
		ringB := ringFixture(1, 16, 4)
		a, b := NewStore(ringA), NewStore(ringB)

		pre := randomBatch(rand.New(rand.NewSource(7)), preload)
		batch := randomBatch(rand.New(rand.NewSource(8)), 2000)

		for _, o := range pre {
			if err := a.Insert(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.BulkInsert(pre); err != nil {
			t.Fatal(err)
		}
		for _, o := range batch {
			if err := a.Insert(o); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.BulkInsert(batch); err != nil {
			t.Fatal(err)
		}

		if a.Len() != b.Len() {
			t.Fatalf("preload %d: Len %d vs %d", preload, a.Len(), b.Len())
		}
		ao, bo := a.Objects(), b.Objects()
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("preload %d: object %d differs: %+v vs %+v", preload, i, ao[i], bo[i])
			}
		}
		avs, bvs := ringA.VServers(), ringB.VServers()
		for i := range avs {
			if avs[i].Load != bvs[i].Load {
				t.Fatalf("preload %d: VS %d load %v vs %v (must be bit-identical)",
					preload, i, avs[i].Load, bvs[i].Load)
			}
		}
		if err := b.CheckLoads(1e-9); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBulkInsertErrors(t *testing.T) {
	s := NewStore(chord.NewRing(sim.NewEngine(1), chord.Config{}))
	if err := s.BulkInsert([]Object{{Key: 1, Load: 1}}); err == nil {
		t.Fatal("expected empty-ring error")
	}
	s = NewStore(ringFixture(1, 4, 2))
	if err := s.BulkInsert([]Object{{Key: 1, Load: -1}}); err == nil {
		t.Fatal("expected negative-load error")
	}
	if s.Len() != 0 {
		t.Fatalf("failed BulkInsert mutated the store: Len = %d", s.Len())
	}
	if err := s.BulkInsert(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// BulkInsert must not alias or reorder the caller's slice.
func TestBulkInsertLeavesBatchAlone(t *testing.T) {
	s := NewStore(ringFixture(1, 4, 2))
	batch := []Object{{Key: 9, Load: 1}, {Key: 3, Load: 2}, {Key: 6, Load: 3}}
	want := append([]Object(nil), batch...)
	if err := s.BulkInsert(batch); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if batch[i] != want[i] {
			t.Fatalf("caller batch mutated at %d: %+v", i, batch[i])
		}
	}
	objs := s.Objects()
	for i := 1; i < len(objs); i++ {
		if objs[i].Key < objs[i-1].Key { //lbvet:ignore identcompare asserting the canonical Key-sorted invariant
			t.Fatalf("store not key-sorted at %d", i)
		}
	}
}

// The satellite's point: the per-object copy-insert is quadratic, the
// bulk path is linearithmic. At 100k objects the gap is around two
// orders of magnitude; run with -bench BulkInsert to see it.
func BenchmarkInsertLoop(b *testing.B) {
	benchInsert(b, func(s *Store, objs []Object) {
		for _, o := range objs {
			if err := s.Insert(o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBulkInsert(b *testing.B) {
	benchInsert(b, func(s *Store, objs []Object) {
		if err := s.BulkInsert(objs); err != nil {
			b.Fatal(err)
		}
	})
}

func benchInsert(b *testing.B, insert func(*Store, []Object)) {
	ring := ringFixture(1, 64, 4)
	batch := randomBatch(rand.New(rand.NewSource(3)), 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := NewStore(ring)
		for _, vs := range ring.VServers() {
			vs.Load = 0
		}
		b.StartTimer()
		insert(s, batch)
	}
}

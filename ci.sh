#!/bin/sh
# ci.sh — the full pre-merge check, also reachable as `make check`.
#
# Order matters: cheap static checks first so formatting or vet
# failures surface before the minutes-long test run. The race pass
# covers the packages that exercise real concurrency (livenet's
# goroutine-per-KT-node rounds, par's worker pools, sim's engine
# contract); the rest of the tree is single-goroutine by design.
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/livenet/ ./internal/par/ ./internal/sim/

echo "ci: all checks passed"

#!/bin/sh
# ci.sh — the full pre-merge check, also reachable as `make check`.
#
# Order matters: cheap static checks first (gofmt, vet, lbvet) so
# formatting, vet or invariant findings surface before the minutes-long
# test run. lbvet runs the project-specific analyzers (randcontract,
# nondeterminism, identcompare, metricsguard — see DESIGN.md "Enforced
# invariants"). The race pass covers the packages that exercise real
# concurrency (livenet's goroutine-per-KT-node rounds, par's worker
# pools, sim's engine contract, ktree's and daemon's goroutine-spawning
# tests); the rest of the tree is single-goroutine by design.
set -eu
cd "$(dirname "$0")"

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt -s needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== lbvet"
go run ./cmd/lbvet

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/livenet/ ./internal/par/ ./internal/sim/ ./internal/ktree/ ./internal/daemon/

echo "== lbbench scale smoke (time-boxed)"
# A small scale run keeps the O(log n) maintenance path honest without
# the full 1M-VS sweep; the timeout catches accidental re-quadratization
# (the 20k build takes ~10 ms — 120 s means something is badly wrong).
tmp=$(mktemp -d)
timeout 120 go run ./cmd/lbbench -bench scale -scalesizes 20000 -out "$tmp"
rm -rf "$tmp"

echo "ci: all checks passed"

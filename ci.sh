#!/bin/sh
# ci.sh — the full pre-merge check, also reachable as `make check`.
#
# Order matters: cheap static checks first (gofmt, vet, lbvet) so
# formatting, vet or invariant findings surface before the minutes-long
# test run. lbvet runs the project-specific analyzers — the syntactic
# ones (randcontract, nondeterminism, identcompare, metricsguard,
# layercheck) and the dataflow ones (detflow, lockguard, hotalloc,
# floatorder) — see DESIGN.md "Enforced invariants". The race pass
# covers the packages that exercise real concurrency (livenet's
# goroutine-per-subtree rounds, par's worker pools, sim's engine
# contract, ktree's, daemon's and faults' goroutine-spawning tests,
# lbnode — whose machines are single-goroutine by construction but
# whose cross-executor equivalence test drives the concurrent livenet
# rounds — protocol, whose opt-in parallel subtree stepper runs one
# goroutine per root-child subtree, wire's reader/retry goroutines,
# and cluster's in-process daemon tests; cluster's child-process e2e
# tests skip themselves under -race via a build tag, since the race
# runtime doesn't cross exec). The rest of the tree is
# single-goroutine by design.
#
# The project binaries (lbvet, lbbench) are built exactly once into a
# temp dir and reused by every later step — `go run` would rebuild
# them on each invocation, and the smoke steps below invoke lbbench
# four times.
set -eu
cd "$(dirname "$0")"

bin=$(mktemp -d)
tmp1=
tmp2=
cleanup() { rm -rf "$bin" ${tmp1:+"$tmp1"} ${tmp2:+"$tmp2"}; }
trap cleanup EXIT INT TERM

echo "== gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt -s needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build (tools)"
go build -o "$bin/lbvet" ./cmd/lbvet
go build -o "$bin/lbbench" ./cmd/lbbench

echo "== lbvet"
# The JSON gate: machine-readable findings on stdout, nonzero exit on
# any finding. The array lands in the log so a CI failure shows the
# structured findings without a rerun.
"$bin/lbvet" -json

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/livenet/ ./internal/par/ ./internal/sim/ ./internal/ktree/ ./internal/daemon/ ./internal/faults/ ./internal/lbnode/ ./internal/protocol/ ./internal/wire/ ./internal/cluster/

echo "== lbbench scale smoke (time-boxed, determinism-diffed)"
# A small scale run keeps the O(log n) maintenance path honest without
# the full 1M-VS sweep. Each size runs the whole lifecycle — ring
# build, tree build, a full balancing round, ~1% node churn, an
# incremental Repair, and CheckInvariants on the repaired tree — and
# fails hard if the compressed tree regresses in shape (height >
# 2·log2(V) or more than 5 KT nodes per VS). The timeout catches
# accidental re-quadratization (the 20k run takes well under a second —
# 120 s means something is badly wrong). Run twice at the same seed:
# the reports must match byte-for-byte once the wall-clock fields
# (unix_time and the *_ms phase timings) are stripped, gating the
# whole lifecycle's seed-determinism.
tmp1=$(mktemp -d)
tmp2=$(mktemp -d)
timeout 120 "$bin/lbbench" -bench scale -scalesizes 20000 -out "$tmp1"
timeout 120 "$bin/lbbench" -bench scale -scalesizes 20000 -out "$tmp2"
grep -vE '"unix_time"|"[a-z_]*_ms"' "$tmp1/BENCH_scale.json" > "$tmp1/stripped"
grep -vE '"unix_time"|"[a-z_]*_ms"' "$tmp2/BENCH_scale.json" > "$tmp2/stripped"
if ! diff "$tmp1/stripped" "$tmp2/stripped"; then
	echo "scale lifecycle is nondeterministic across identical runs" >&2
	exit 1
fi
rm -rf "$tmp1" "$tmp2"
tmp1=
tmp2=

echo "== lbbench runtime smoke (time-boxed, executor-equivalence-gated)"
# A small cross-executor round: the runtime benchmark runs the same
# balancing round under the deterministic-sim driver (internal/protocol)
# and the concurrent channel executor (internal/livenet) and fails hard
# inside runRuntime if the transfer sets differ — the gate that caught
# the intermediate-rendezvous divergence this smoke exists to keep
# caught. 8k VSs keeps it under a second; 120 s means a hang.
tmp1=$(mktemp -d)
timeout 120 "$bin/lbbench" -bench runtime -runtimesizes 8000 -out "$tmp1"
rm -rf "$tmp1"
tmp1=

echo "== lbbench fault smoke (time-boxed, determinism-diffed)"
# A small drop-rate sweep plus partition recovery, run twice at the same
# seed: the reports must match byte-for-byte once the two wall-clock
# fields are stripped. This gates the fault path's (seed, plan)
# determinism, not just its correctness.
tmp1=$(mktemp -d)
tmp2=$(mktemp -d)
timeout 120 "$bin/lbbench" -bench faults -faultnodes 128 -out "$tmp1"
timeout 120 "$bin/lbbench" -bench faults -faultnodes 128 -out "$tmp2"
grep -v '"unix_time"\|"wall_ms"' "$tmp1/BENCH_faults.json" > "$tmp1/stripped"
grep -v '"unix_time"\|"wall_ms"' "$tmp2/BENCH_faults.json" > "$tmp2/stripped"
if ! diff "$tmp1/stripped" "$tmp2/stripped"; then
	echo "fault sweep is nondeterministic across identical runs" >&2
	exit 1
fi
rm -rf "$tmp1" "$tmp2"
tmp1=
tmp2=

echo "== lbbench serve smoke (time-boxed, determinism-diffed)"
# A small serving run — 3 variants (balancer on/off/nocache) over the
# same Zipf request plan — run twice at the same seed: the reports must
# match byte-for-byte once the wall-clock fields are stripped. The
# per-request latency checksums inside the report make this diff pin
# the raw latency streams, not just the summaries. The tail-contrast
# acceptance gate inside lbbench only arms at >= 100k requests, so this
# smoke gates determinism; BENCH_serve.json (committed, 1M requests)
# gates the tail claim. serve needs no -race leg: it is single-goroutine
# on the sim engine (the three variants parallelize via internal/par,
# which has its own race pass; livenet never participates).
tmp1=$(mktemp -d)
tmp2=$(mktemp -d)
timeout 120 "$bin/lbbench" -bench serve -servesizes 128 -serverequests 20000 -out "$tmp1"
timeout 120 "$bin/lbbench" -bench serve -servesizes 128 -serverequests 20000 -out "$tmp2"
grep -vE '"unix_time"|"[a-z_]*_ms"' "$tmp1/BENCH_serve.json" > "$tmp1/stripped"
grep -vE '"unix_time"|"[a-z_]*_ms"' "$tmp2/BENCH_serve.json" > "$tmp2/stripped"
if ! diff "$tmp1/stripped" "$tmp2/stripped"; then
	echo "serving layer is nondeterministic across identical runs" >&2
	exit 1
fi
rm -rf "$tmp1" "$tmp2"
tmp1=
tmp2=

echo "== cluster chaos smoke (4 processes, time-boxed)"
# A real multi-process run: four lbd daemons over TCP, one SIGKILL
# mid-round, supervisor restart, conservation + settle gates inside the
# test. -short keeps the bigger 8-process e2e out of this step (it
# already ran under `go test ./...` above); the hard timeout catches a
# hung settle — the smoke itself finishes in well under a minute, and
# each round has its own 30 s in-test settle bound, so 300 s means the
# supervisor or the harness is wedged, not slow.
timeout 300 go test -short -count=1 -run TestClusterChaosSmoke ./internal/cluster/

echo "ci: all checks passed"

// Command lbsim regenerates the paper's figures.
//
// Usage:
//
//	lbsim -fig 4          # unit-load scatter before/after LB (Gaussian)
//	lbsim -fig 5          # load by capacity class, Gaussian
//	lbsim -fig 6          # load by capacity class, Pareto
//	lbsim -fig 7          # moved load vs distance, ts5k-large, aware vs ignorant
//	lbsim -fig 8          # moved load vs distance, ts5k-small
//	lbsim -fig vsatime    # phase completion times for K=2 and K=8
//	lbsim -fig cfs        # CFS-style shedding baseline (load thrashing)
//	lbsim -fig rao        # Rao et al. schemes vs the tree scheme
//	lbsim -fig churn      # robustness vs membership churn rate
//	lbsim -fig faults     # graceful degradation under message loss + partition recovery
//	lbsim -fig serve      # tail latency serving 1M Zipf requests, balancer on/off
//
// Common flags: -seed, -nodes, -graphs (figs 7/8), -eps, -csv FILE.
// Observability: -metrics FILE dumps a metrics snapshot (JSON, or CSV
// with a .csv suffix) of counters, histograms and series recorded
// during the run; -cpuprofile/-memprofile write pprof profiles.
// The program prints the same rows/series the paper plots; absolute
// numbers differ from the paper's testbed, the shapes should not.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"text/tabwriter"

	"p2plb/internal/chord"
	"p2plb/internal/core"
	"p2plb/internal/exp"
	"p2plb/internal/metrics"
	"p2plb/internal/rao"
	"p2plb/internal/stats"
	"p2plb/internal/topology"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 4, 5, 6, 7, 8, vsatime, cfs, rao, churn, faults, serve")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		nodes      = flag.Int("nodes", 4096, "number of DHT nodes")
		graphs     = flag.Int("graphs", 10, "topology instances for figs 7/8 (paper: 10)")
		eps        = flag.Float64("eps", 0.05, "target slack epsilon (0 is honoured: zero slack)")
		csvOut     = flag.String("csv", "", "also write raw series to this CSV file")
		metricsOut = flag.String("metrics", "", "write a metrics snapshot to this file (JSON, or CSV if it ends in .csv)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		reg = metrics.NewRegistry()
	}
	err := run(*fig, *seed, *nodes, *graphs, *eps, *csvOut, reg)
	if err == nil && reg != nil {
		err = reg.Snapshot().WriteFile(*metricsOut)
	}
	if err == nil && *memProf != "" {
		err = writeHeapProfile(*memProf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func run(fig string, seed int64, nodes, graphs int, eps float64, csvOut string, reg *metrics.Registry) error {
	switch fig {
	case "4":
		return fig4(seed, nodes, eps, csvOut, reg)
	case "5":
		return fig56(seed, nodes, eps, false, csvOut, reg)
	case "6":
		return fig56(seed, nodes, eps, true, csvOut, reg)
	case "7":
		return fig78(seed, nodes, graphs, "ts5k-large", topology.TS5kLarge, csvOut, reg)
	case "8":
		return fig78(seed, nodes, graphs, "ts5k-small", topology.TS5kSmall, csvOut, reg)
	case "vsatime":
		return vsatime(seed, nodes, reg)
	case "cfs":
		return cfs(seed, nodes, eps)
	case "rao":
		return raoComparison(seed, nodes, eps)
	case "churn":
		return churnSensitivity(seed, nodes)
	case "faults":
		return faultTolerance(seed, nodes)
	case "serve":
		return figServe(seed, nodes, csvOut, reg)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// figServe runs the tail-latency serving experiment (EXPERIMENTS.md
// "Tail latency"): the same million-request Zipf plan replayed with the
// balancer off, on, and on-without-lookup-cache, showing whether
// balancing flattens the service tail and what the hot-path cache
// saves in lookup hops.
func figServe(seed int64, nodes int, csvOut string, reg *metrics.Registry) error {
	s := exp.DefaultServeSetup(seed)
	s.Nodes = nodes
	s.Metrics = reg
	rows, err := exp.ServeSweep(s)
	if err != nil {
		return err
	}
	fmt.Printf("Serving layer — tail latency under load balancing, N=%d, %d requests @ %.1f/tick (%.0f%% of ideal throughput)\n",
		nodes, s.Requests, rows[0].Rate, 100*s.Utilization)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  variant\thops\thit%\tlookup p50/p99\tservice p50\tservice p99\tservice p999\trounds\ttransfers")
	for _, r := range rows {
		hitPct := 0.0
		if looked := r.CacheHits + r.CacheMisses; looked > 0 {
			hitPct = 100 * float64(r.CacheHits) / float64(looked)
		}
		fmt.Fprintf(w, "  %s\t%.2f\t%.1f\t%.0f/%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			r.Variant, r.MeanHops, hitPct,
			r.Lookup.P50, r.Lookup.P99,
			r.Service.P50, r.Service.P99, r.Service.P999,
			r.Rounds, r.Transfers)
	}
	w.Flush()
	if csvOut != "" {
		out := [][]string{{"variant", "mean_hops", "cache_hits", "cache_misses",
			"lookup_p50", "lookup_p99", "service_p50", "service_p99", "service_p999",
			"rounds", "transfers"}}
		for _, r := range rows {
			out = append(out, []string{
				r.Variant, fmtF(r.MeanHops),
				strconv.FormatInt(r.CacheHits, 10), strconv.FormatInt(r.CacheMisses, 10),
				fmtF(r.Lookup.P50), fmtF(r.Lookup.P99),
				fmtF(r.Service.P50), fmtF(r.Service.P99), fmtF(r.Service.P999),
				strconv.Itoa(r.Rounds), strconv.Itoa(r.Transfers),
			})
		}
		return writeCSV(csvOut, out)
	}
	return nil
}

func setupWith(seed int64, nodes int, eps float64) exp.Setup {
	s := exp.DefaultSetup(seed)
	s.Nodes = nodes
	s.Epsilon = eps
	return s
}

func fig4(seed int64, nodes int, eps float64, csvOut string, reg *metrics.Registry) error {
	s := setupWith(seed, nodes, eps)
	s.Metrics = reg
	inst, err := exp.Build(s)
	if err != nil {
		return err
	}
	before := inst.Balancer.UnitLoads()
	res, err := inst.Balancer.RunRound()
	if err != nil {
		return err
	}
	after := inst.Balancer.UnitLoads()

	fmt.Printf("Figure 4 — unit load (load/capacity) per node, Gaussian, N=%d, eps=%.2f\n", nodes, eps)
	fmt.Printf("  heavy before: %d (%.0f%%)   heavy after: %d\n",
		res.HeavyBefore, 100*float64(res.HeavyBefore)/float64(nodes), res.HeavyAfter)
	fmt.Printf("  light before: %d  neutral before: %d\n", res.LightBefore, res.NeutralBefore)
	fmt.Printf("  moved load: %.0f (%.1f%% of total) in %d transfers, %d offers unassigned\n",
		res.MovedLoad, 100*res.MovedLoad/res.Global.L, len(res.Assignments), res.UnassignedOffers)
	// Sort copies once; before/after keep node order for the CSV rows.
	sortedB := append([]float64(nil), before...)
	sortedA := append([]float64(nil), after...)
	sort.Float64s(sortedB)
	sort.Float64s(sortedA)
	sb, sa := stats.SummarizeSorted(sortedB), stats.SummarizeSorted(sortedA)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  unit load\tmean\tstd\tp50\tp99\tmax")
	fmt.Fprintf(w, "  before\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
		sb.Mean, sb.Std, sb.Median, stats.PercentileSorted(sortedB, 99), sb.Max)
	fmt.Fprintf(w, "  after\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
		sa.Mean, sa.Std, sa.Median, stats.PercentileSorted(sortedA, 99), sa.Max)
	w.Flush()
	if csvOut != "" {
		rows := [][]string{{"node", "unit_before", "unit_after"}}
		for i := range before {
			rows = append(rows, []string{
				strconv.Itoa(i + 1), fmtF(before[i]), fmtF(after[i]),
			})
		}
		return writeCSV(csvOut, rows)
	}
	return nil
}

func fig56(seed int64, nodes int, eps float64, pareto bool, csvOut string, reg *metrics.Registry) error {
	name, figNo := "Gaussian", "5"
	if pareto {
		name, figNo = "Pareto(alpha=1.5)", "6"
	}
	s := setupWith(seed, nodes, eps)
	s.Pareto = pareto
	s.Metrics = reg
	inst, err := exp.Build(s)
	if err != nil {
		return err
	}
	before := inst.Balancer.LoadByCapacityClass()
	res, err := inst.Balancer.RunRound()
	if err != nil {
		return err
	}
	after := inst.Balancer.LoadByCapacityClass()

	fmt.Printf("Figure %s — load by node capacity class, %s, N=%d\n", figNo, name, nodes)
	fmt.Printf("  heavy before: %d, after: %d; moved %.1f%% of total load\n",
		res.HeavyBefore, res.HeavyAfter, 100*res.MovedLoad/res.Global.L)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  capacity\tnodes\tmean load before\tmean load after\tunit before\tunit after")
	rows := [][]string{{"capacity", "nodes", "mean_before", "mean_after", "unit_before", "unit_after"}}
	for _, c := range before.Classes() {
		fmt.Fprintf(w, "  %.0f\t%d\t%.1f\t%.1f\t%.2f\t%.2f\n",
			c, before.Count(c), before.Mean(c), after.Mean(c),
			before.Mean(c)/c, after.Mean(c)/c)
		rows = append(rows, []string{
			fmtF(c), strconv.Itoa(before.Count(c)),
			fmtF(before.Mean(c)), fmtF(after.Mean(c)),
			fmtF(before.Mean(c) / c), fmtF(after.Mean(c) / c),
		})
	}
	w.Flush()
	fmt.Println("  (after balancing, unit load should be nearly equal across classes:")
	fmt.Println("   higher-capacity nodes carry proportionally more load)")
	if csvOut != "" {
		return writeCSV(csvOut, rows)
	}
	return nil
}

func fig78(seed int64, nodes, graphs int, name string, topo func(int64) topology.Params, csvOut string, reg *metrics.Registry) error {
	fmt.Printf("Figure %s — moved load vs transfer distance, %s, N=%d, %d graphs\n",
		map[string]string{"ts5k-large": "7", "ts5k-small": "8"}[name], name, nodes, graphs)
	dist, err := exp.MovedLoadDistribution(topo, graphs, seed, nodes, reg)
	if err != nil {
		return err
	}
	if dist.HeavyResidualAware+dist.HeavyResidualIgnorant > 0 {
		fmt.Printf("  WARNING: residual heavy nodes (aware %d, ignorant %d)\n",
			dist.HeavyResidualAware, dist.HeavyResidualIgnorant)
	}
	maxB := dist.Aware.MaxBucket()
	if b := dist.Ignorant.MaxBucket(); b > maxB {
		maxB = b
	}
	pdfA, cdfA := dist.Aware.PDF(), dist.Aware.CDF()
	pdfI, cdfI := dist.Ignorant.PDF(), dist.Ignorant.CDF()
	at := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		if len(s) == 0 {
			return 0
		}
		return s[len(s)-1]
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  distance\tPDF aware\tPDF ignorant\tCDF aware\tCDF ignorant")
	rows := [][]string{{"distance", "pdf_aware", "pdf_ignorant", "cdf_aware", "cdf_ignorant"}}
	for b := 0; b <= maxB; b++ {
		// Print only buckets that carry anything, plus the CDF milestones.
		if at(pdfA, b) < 0.001 && at(pdfI, b) < 0.001 && b%5 != 0 {
			continue
		}
		fmt.Fprintf(w, "  %d\t%.3f\t%.3f\t%.3f\t%.3f\n",
			b, at(pdfA, b), at(pdfI, b), minF(at(cdfA, b), 1), minF(at(cdfI, b), 1))
		rows = append(rows, []string{
			strconv.Itoa(b), fmtF(at(pdfA, b)), fmtF(at(pdfI, b)),
			fmtF(at(cdfA, b)), fmtF(at(cdfI, b)),
		})
	}
	w.Flush()
	ma, mi := dist.MeanHops()
	fmt.Printf("  aware:    %.0f%% of moved load within 2 units, %.0f%% within 10; mean %.1f\n",
		100*dist.Aware.FractionWithin(2), 100*dist.Aware.FractionWithin(10), ma)
	fmt.Printf("  ignorant: %.0f%% of moved load within 2 units, %.0f%% within 10; mean %.1f\n",
		100*dist.Ignorant.FractionWithin(2), 100*dist.Ignorant.FractionWithin(10), mi)
	if name == "ts5k-large" {
		fmt.Println("  (paper, ts5k-large: aware ~67% within 2 hops, ~86% within 10;")
		fmt.Println("   ignorant ~13% within 10)")
	} else {
		fmt.Println("  (paper, ts5k-small: nodes scattered across the Internet; aware")
		fmt.Println("   still clearly outperforms ignorant, with the gap attenuated)")
	}
	if csvOut != "" {
		return writeCSV(csvOut, rows)
	}
	return nil
}

func vsatime(seed int64, nodes int, reg *metrics.Registry) error {
	sizes := []int{nodes / 8, nodes / 4, nodes / 2, nodes}
	sort.Ints(sizes)
	rows, err := exp.VSATimes([]int{2, 8}, sizes, seed, reg)
	if err != nil {
		return err
	}
	fmt.Println("VSA completion time — O(log_K N) bound check")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  K\tnodes\tVSs\ttree height\tLBI up\tLBI down\tVSA done\tVST done")
	for _, r := range rows {
		fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.K, r.Nodes, r.VServers, r.TreeHeight, r.LBIUp, r.LBIDown, r.VSADone, r.VSTDone)
	}
	return w.Flush()
}

func cfs(seed int64, nodes int, eps float64) error {
	s := setupWith(seed, nodes, eps)
	inst, err := exp.Build(s)
	if err != nil {
		return err
	}
	out, err := core.RunCFSShedding(inst.Ring, eps, 100)
	if err != nil {
		return err
	}
	fmt.Printf("CFS-style shedding baseline, N=%d, eps=%.2f\n", nodes, eps)
	fmt.Printf("  rounds: %d  shed VSs: %d  thrash events: %d  converged: %v  heavy at end: %d\n",
		out.Rounds, out.Shed, out.ThrashEvents, out.Converged, out.HeavyAtEnd)
	fmt.Println("  (thrash events = nodes made heavy by regions shed onto them;")
	fmt.Println("   the paper cites this failure mode as motivation, §1.1)")
	return nil
}

// raoComparison runs the three Rao et al. schemes and the paper's tree
// scheme on identical workloads over a ts5k-large underlay and compares
// convergence and transfer cost.
func raoComparison(seed int64, nodes int, eps float64) error {
	fmt.Printf("Rao et al. schemes vs the tree scheme, ts5k-large, N=%d, eps=%.2f\n", nodes, eps)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  scheme\trounds\theavy start\theavy end\ttransfers\tmoved load\tmean distance")

	build := func(mode core.Mode) (*exp.Instance, error) {
		p := topology.TS5kLarge(seed)
		s := setupWith(seed, nodes, eps)
		s.Topology = &p
		s.Mode = mode
		return exp.Build(s)
	}
	meanDist := func(h interface {
		Total() float64
		MaxBucket() int
		Weight(int) float64
	}) float64 {
		if h.Total() == 0 {
			return 0
		}
		var hw float64
		for b := 0; b <= h.MaxBucket(); b++ {
			hw += float64(b) * h.Weight(b)
		}
		return hw / h.Total()
	}

	for _, scheme := range []rao.Scheme{rao.OneToOne, rao.OneToMany, rao.ManyToMany} {
		inst, err := build(core.ProximityIgnorant)
		if err != nil {
			return err
		}
		hops := inst.HopDistances
		res, err := rao.Run(inst.Ring, rao.Config{
			Scheme:  scheme,
			Epsilon: eps,
			TransferCost: func(from, to *chord.Node) int {
				if from == to || from.Underlay == to.Underlay {
					return 0
				}
				return int(hops.Between(from.Underlay, to.Underlay))
			},
		}, 50)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %s\t%d\t%d\t%d\t%d\t%.0f\t%.1f\n",
			scheme, res.Rounds, res.HeavyStart, res.HeavyEnd,
			res.Transfers, res.MovedLoad, meanDist(res.MovedByHops))
	}
	for _, mode := range []core.Mode{core.ProximityIgnorant, core.ProximityAware} {
		inst, err := build(mode)
		if err != nil {
			return err
		}
		res, err := inst.Balancer.RunRound()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  tree (%s)\t%d\t%d\t%d\t%d\t%.0f\t%.1f\n",
			mode, 1, res.HeavyBefore, res.HeavyAfter,
			len(res.Assignments), res.MovedLoad, meanDist(res.MovedByHops))
	}
	w.Flush()
	fmt.Println("  (Rao et al. schemes ignore proximity: their mean transfer distance")
	fmt.Println("   matches the tree's ignorant mode; only the aware tree cuts it)")
	return nil
}

// churnSensitivity reports balancing behaviour as membership churn
// grows — the robustness exploration the paper defers to future work.
func churnSensitivity(seed int64, nodes int) error {
	if nodes > 1024 {
		nodes = 1024 // message-level rounds; keep the sweep tractable
	}
	rates := []int{0, nodes / 64, nodes / 16, nodes / 8}
	fmt.Printf("Robustness vs churn — %d message-level rounds each, N=%d\n", 10, nodes)
	rows, err := exp.ChurnSensitivity(seed, nodes, rates, 10)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  churn/round\trounds\tfailed\ttimed-out epochs\taborted VSTs\theavy before\theavy after\tmoved/round")
	for _, r := range rows {
		fmt.Fprintf(w, "  %d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.0f\n",
			r.Churn, r.Rounds, r.Failed, r.TimedOutChildren, r.AbortedTransfers,
			r.MeanHeavyBefore, r.MeanHeavyAfter, r.MovedPerRound)
	}
	w.Flush()
	fmt.Println("  (steady-state means, first round excluded; churn replaces that many")
	fmt.Println("   random nodes before every round)")
	return nil
}

// faultSweepRates is the drop-rate grid both lbsim and lbbench run.
var faultSweepRates = []float64{0, 0.05, 0.10, 0.20, 0.30}

// faultTolerance reports graceful degradation under uniform message
// loss, then partition recovery — the fault-injection experiment.
func faultTolerance(seed int64, nodes int) error {
	if nodes > 512 {
		nodes = 512 // message-level rounds with retransmission; keep tractable
	}
	const rounds = 6
	fmt.Printf("Fault tolerance — %d message-level rounds per drop rate, N=%d\n", rounds, nodes)
	rows, err := exp.FaultSweep(seed, nodes, faultSweepRates, rounds)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  drop\trounds\tcompleted\tfailed\tretries\ttimed-out epochs\taborted VSTs\tdropped msgs\tmean round time\tfinal gini")
	for _, r := range rows {
		fmt.Fprintf(w, "  %.0f%%\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.4f\n",
			100*r.DropRate, r.Rounds, r.Completed, r.Failed, r.Retries,
			r.TimedOutChildren, r.AbortedTransfers, r.Dropped, r.MeanRoundTime, r.FinalGini)
	}
	w.Flush()
	fmt.Println("  (acks + bounded retries keep imbalance near fault-free levels;")
	fmt.Println("   round time grows with the retransmission work)")

	p, err := exp.PartitionRecovery(seed, nodes, 2, 6)
	if err != nil {
		return err
	}
	fmt.Printf("Partition recovery — half the ring cut before balancing, N=%d\n", p.Nodes)
	fmt.Printf("  baseline gini %.4f; after %d partitioned rounds (%d failed): gini %.4f\n",
		p.BaselineGini, p.PartitionRounds, p.FailedDuring, p.GiniAtHeal)
	if p.RoundsToRecover < 0 {
		fmt.Println("  did NOT recover within the round budget after healing")
	} else {
		fmt.Printf("  healed: recovered to gini %.4f in %d round(s), %d time units (%d retries total)\n",
			p.RecoveredGini, p.RoundsToRecover, p.RecoveryTime, p.Retries)
	}
	return nil
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

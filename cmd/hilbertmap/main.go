// Command hilbertmap inspects the proximity mapping: landmark vectors,
// Hilbert numbers, DHT keys, and how well closeness in key space tracks
// physical closeness on a generated topology.
//
// Usage:
//
//	hilbertmap -preset ts5k-large -seed 1 -samples 12   # show sample mappings
//	hilbertmap -preset ts5k-large -locality             # locality quality report
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"

	"p2plb/internal/proximity"
	"p2plb/internal/topology"
)

func main() {
	var (
		preset   = flag.String("preset", "ts5k-large", "topology preset: ts5k-large or ts5k-small")
		seed     = flag.Int64("seed", 1, "generation seed")
		samples  = flag.Int("samples", 8, "nodes to print mappings for")
		locality = flag.Bool("locality", false, "report locality quality instead of samples")
		bits     = flag.Int("bits", proximity.DefaultBitsPerDimension, "grid bits per landmark dimension")
		lmCount  = flag.Int("landmarks", proximity.DefaultLandmarkCount, "number of landmarks")
	)
	flag.Parse()
	var params topology.Params
	switch *preset {
	case "ts5k-large":
		params = topology.TS5kLarge(*seed)
	case "ts5k-small":
		params = topology.TS5kSmall(*seed)
	default:
		fmt.Fprintf(os.Stderr, "hilbertmap: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	g, err := topology.Generate(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hilbertmap:", err)
		os.Exit(1)
	}
	lat := topology.NewDistancesMetric(g, topology.LatencyMetric)
	hops := topology.NewDistances(g)
	rng := rand.New(rand.NewSource(*seed))
	lm, err := proximity.ChooseSpread(g, lat, rng, *lmCount)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hilbertmap:", err)
		os.Exit(1)
	}
	m, err := proximity.NewMapper(lm, *bits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hilbertmap:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d landmarks, %d bits/dim (curve index %d bits)\n",
		*preset, lm.Count(), *bits, lm.Count()**bits)

	if !*locality {
		stubs := g.StubNodes()
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  node\tdomain\tgrid cell (first 6 dims)\thilbert number\tDHT key")
		for i := 0; i < *samples; i++ {
			n := stubs[rng.Intn(len(stubs))]
			coords := m.GridCoords(n)
			fmt.Fprintf(w, "  %d\t%d\t%v…\t%#x\t%s\n",
				n, g.Node(n).Domain, coords[:6], m.HilbertNumber(n), m.Key(n))
		}
		w.Flush()
		return
	}

	// Locality report: for random pairs, bucket physical hop distance
	// and report mean absolute key distance per bucket.
	type bucket struct {
		sum   float64
		count int
		same  int
	}
	buckets := map[string]*bucket{
		"same stub domain (<=2 hops)": {},
		"same region (<=9 hops)":      {},
		"far (>=10 hops)":             {},
	}
	stubs := g.StubNodes()
	for sampled := 0; sampled < 20000; {
		a := stubs[rng.Intn(len(stubs))]
		b := stubs[rng.Intn(len(stubs))]
		if a == b {
			continue
		}
		sampled++
		d := hops.Between(a, b)
		var key string
		switch {
		case d <= 2:
			key = "same stub domain (<=2 hops)"
		case d <= 9:
			key = "same region (<=9 hops)"
		default:
			key = "far (>=10 hops)"
		}
		ka, kb := m.Key(a), m.Key(b)
		gap := ka.Dist(kb)
		if rev := kb.Dist(ka); rev < gap {
			gap = rev
		}
		bk := buckets[key]
		bk.sum += float64(gap)
		bk.count++
		if m.HilbertNumber(a) == m.HilbertNumber(b) {
			bk.same++
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  physical closeness\tpairs\tmean key gap\texact cell collision")
	for _, key := range []string{"same stub domain (<=2 hops)", "same region (<=9 hops)", "far (>=10 hops)"} {
		bk := buckets[key]
		if bk.count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %s\t%d\t%.3g\t%.1f%%\n",
			key, bk.count, bk.sum/float64(bk.count), 100*float64(bk.same)/float64(bk.count))
	}
	w.Flush()
}

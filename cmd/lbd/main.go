// Command lbd is one physical node of the multi-process load-balancer
// deployment: it hosts the rank's KT-subtree state machines over the
// internal/wire protocol, persists two-phase transfers to a per-rank
// WAL, and serves /metrics over HTTP. The supervisor (internal/cluster)
// launches one lbd per rank, SIGKILLs them on chaos schedules and
// restarts them; lbd therefore treats abrupt death as the normal
// shutdown path and keeps no state outside the WAL.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"p2plb/internal/cluster"
)

func main() {
	var (
		specPath = flag.String("spec", "", "path to the cluster spec (JSON, written by the supervisor)")
		rank     = flag.Int("rank", -1, "this daemon's rank in the spec's address table")
		dataDir  = flag.String("data", "", "directory for the WAL")
	)
	flag.Parse()
	if *specPath == "" || *rank < 0 || *dataDir == "" {
		fmt.Fprintln(os.Stderr, "usage: lbd -spec spec.json -rank N -data dir")
		os.Exit(2)
	}
	spec, err := cluster.LoadSpec(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbd:", err)
		os.Exit(1)
	}
	d, err := cluster.NewDaemon(cluster.DaemonConfig{Spec: spec, Rank: *rank, DataDir: *dataDir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbd:", err)
		os.Exit(1)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case <-d.Done():
	}
	d.Close()
}

// Command lbvet runs the project's static-analysis suite: the
// machine-checked invariants of internal/analysis (randcontract,
// nondeterminism, identcompare, metricsguard, layercheck) over every
// package in the module, including test files. It prints findings as
// file:line:col and exits nonzero when any survive the
// //lbvet:ignore annotations, so ci.sh can gate on it between vet and
// build.
//
// Usage:
//
//	lbvet [-C dir] [-run analyzer,analyzer] [-list]
//
// Suppress a deliberate violation with a trailing (or
// immediately-preceding) comment carrying a mandatory justification:
//
//	//lbvet:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"p2plb/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory inside the module to vet")
	run := flag.String("run", "all", "comma-separated analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}
	total := 0
	for _, pkg := range pkgs {
		for _, f := range analysis.RunAnalyzers(pkg, analyzers) {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "lbvet: %d finding(s)\n", total)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbvet:", err)
	os.Exit(2)
}

// Command lbvet runs the project's static-analysis suite: the
// machine-checked invariants of internal/analysis — the syntactic
// analyzers (randcontract, nondeterminism, identcompare, metricsguard,
// layercheck) and the dataflow ones (detflow, lockguard, hotalloc,
// floatorder) — over every package in the module, including test
// files. It prints findings as file:line:col (or a JSON array with
// -json) and exits nonzero when any survive the //lbvet:ignore
// annotations, so ci.sh can gate on it between vet and build.
//
// Usage:
//
//	lbvet [-C dir] [-run analyzer,analyzer] [-json] [-list]
//
// Packages load in parallel through a shared type-check cache;
// analyzers then run per package, also in parallel, with findings
// reported in deterministic sorted order regardless of scheduling.
//
// Suppress a deliberate violation with a trailing (or
// immediately-preceding) comment carrying a mandatory justification:
//
//	//lbvet:ignore <analyzer> <reason>
//
// An ignore without a reason, or one naming an analyzer that is not
// registered (a stale annotation), is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"p2plb/internal/analysis"
)

// jsonFinding is the -json wire shape of one finding, stable for CI
// tooling: {"analyzer","file","line","col","message"}.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	dir := flag.String("C", ".", "directory inside the module to vet")
	run := flag.String("run", "all", "comma-separated analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}

	// Analyze packages in parallel; package facts are per-package, so
	// the only shared state is the per-slot result. The flatten below
	// keeps output in the loader's deterministic package order.
	perPkg := make([][]analysis.Finding, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i] = analysis.RunAnalyzers(pkgs[i], analyzers)
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()

	var findings []analysis.Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lbvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbvet:", err)
	os.Exit(2)
}

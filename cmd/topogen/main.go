// Command topogen generates and inspects the transit-stub topologies
// the experiments run on.
//
// Usage:
//
//	topogen -preset ts5k-large -seed 3            # summary statistics
//	topogen -preset ts5k-small -seed 1 -dot g.dot # also dump Graphviz
//	topogen -preset ts5k-large -pairs 2000        # distance distributions
//
// It reports node/edge/domain counts, degree statistics, and the
// hop-metric and latency-metric distance distributions for random
// node pairs (split into same-stub-domain, same-transit-attachment and
// cross-domain pairs), which is how the figures' distance buckets were
// sanity-checked.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"

	"p2plb/internal/stats"
	"p2plb/internal/topology"
)

func main() {
	var (
		preset = flag.String("preset", "ts5k-large", "topology preset: ts5k-large or ts5k-small")
		seed   = flag.Int64("seed", 1, "generation seed")
		pairs  = flag.Int("pairs", 1000, "random pairs to sample for distance stats")
		dot    = flag.String("dot", "", "write a Graphviz dot file (transit backbone only)")
	)
	flag.Parse()
	var params topology.Params
	switch *preset {
	case "ts5k-large":
		params = topology.TS5kLarge(*seed)
	case "ts5k-small":
		params = topology.TS5kSmall(*seed)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	g, err := topology.Generate(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}

	transit := 0
	degSum, degMax := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(topology.NodeID(i)).Kind == topology.Transit {
			transit++
		}
		d := len(g.Neighbors(topology.NodeID(i)))
		degSum += d
		if d > degMax {
			degMax = d
		}
	}
	fmt.Printf("%s (seed %d)\n", *preset, *seed)
	fmt.Printf("  nodes: %d (%d transit, %d stub)  edges: %d  domains: %d  connected: %v\n",
		g.NumNodes(), transit, len(g.StubNodes()), g.NumEdges(), g.NumDomains(), g.Connected())
	fmt.Printf("  mean degree: %.1f  max degree: %d\n",
		float64(degSum)/float64(g.NumNodes()), degMax)

	// Distance distributions by pair class.
	rng := rand.New(rand.NewSource(*seed + 1))
	hops := topology.NewDistances(g)
	lat := topology.NewDistancesMetric(g, topology.LatencyMetric)
	classes := map[string]*struct{ h, l []float64 }{
		"same-stub-domain": {},
		"cross-domain":     {},
	}
	stubs := g.StubNodes()
	for sampled := 0; sampled < *pairs; {
		a := stubs[rng.Intn(len(stubs))]
		b := stubs[rng.Intn(len(stubs))]
		if a == b {
			continue
		}
		sampled++
		key := "cross-domain"
		if g.Node(a).Domain == g.Node(b).Domain {
			key = "same-stub-domain"
		}
		c := classes[key]
		c.h = append(c.h, float64(hops.Between(a, b)))
		c.l = append(c.l, float64(lat.Between(a, b)))
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  pair class\tn\thops mean\thops p95\tlatency mean\tlatency p95")
	for _, key := range []string{"same-stub-domain", "cross-domain"} {
		c := classes[key]
		if len(c.h) == 0 {
			continue
		}
		// Sort once; the samples are not used in original order below.
		sort.Float64s(c.h)
		sort.Float64s(c.l)
		hs, ls := stats.SummarizeSorted(c.h), stats.SummarizeSorted(c.l)
		fmt.Fprintf(w, "  %s\t%d\t%.1f\t%.1f\t%.0f\t%.0f\n",
			key, hs.N, hs.Mean, stats.PercentileSorted(c.h, 95), ls.Mean, stats.PercentileSorted(c.l, 95))
	}
	w.Flush()

	if *dot != "" {
		if err := writeDot(g, *dot); err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		fmt.Printf("  transit backbone written to %s\n", *dot)
	}
}

// writeDot dumps the transit backbone (stub domains collapsed) as
// Graphviz.
func writeDot(g *topology.Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "graph backbone {")
	for i := 0; i < g.NumNodes(); i++ {
		a := topology.NodeID(i)
		if g.Node(a).Kind != topology.Transit {
			continue
		}
		fmt.Fprintf(f, "  t%d [label=\"T%d/d%d\"];\n", a, a, g.Node(a).Domain)
		for _, e := range g.Neighbors(a) {
			if g.Node(e.To).Kind == topology.Transit && e.To > a {
				fmt.Fprintf(f, "  t%d -- t%d [label=%d];\n", a, e.To, e.Weight)
			}
		}
	}
	fmt.Fprintln(f, "}")
	return nil
}

// Command lbbench runs the figure drivers as timed benchmarks and
// writes machine-readable result files, one per benchmark, named
// BENCH_<name>.json in the output directory.
//
// Usage:
//
//	lbbench                                  # fig4 and vsatime
//	lbbench -bench fig4,fig7,vsatime -out d  # add the fig 7 sweep
//	lbbench -bench serve                     # tail-latency serving sweep
//
// Each BENCH_<name>.json holds:
//
//	{
//	  "name":      "fig4",
//	  "unix_time": 1722816000,          // run timestamp (seconds)
//	  "config":    {"seed":1, "nodes":4096, "graphs":10, "epsilon":0.05},
//	  "wall_ms":   1234,                // end-to-end driver wall time
//	  "results":   {...},               // benchmark-specific outcome
//	  "metrics":   {...}                // metrics.Snapshot of the run
//	}
//
// The metrics object is the same snapshot `lbsim -metrics` emits:
// counters (msg.*, core.*), histograms (chord.lookup.*, core.phase.*)
// and series, so regressions in message counts or phase times are
// diffable across commits, not just wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"p2plb/internal/chord"
	"p2plb/internal/cluster"
	"p2plb/internal/core"
	"p2plb/internal/exp"
	"p2plb/internal/ktree"
	"p2plb/internal/livenet"
	"p2plb/internal/metrics"
	"p2plb/internal/protocol"
	"p2plb/internal/sim"
	"p2plb/internal/topology"
	"p2plb/internal/workload"
)

type benchConfig struct {
	Seed         int64     `json:"seed"`
	Nodes        int       `json:"nodes"`
	Graphs       int       `json:"graphs,omitempty"`
	Epsilon      float64   `json:"epsilon"`
	ScaleSizes   []int     `json:"scale_sizes,omitempty"`
	RuntimeSizes []int     `json:"runtime_sizes,omitempty"`
	DropRates    []float64 `json:"drop_rates,omitempty"`
	Procs        int       `json:"procs,omitempty"`
	Rounds       int       `json:"rounds,omitempty"`
	Kills        int       `json:"kills,omitempty"`
	ServeSizes   []int     `json:"serve_sizes,omitempty"`
	ServeReqs    int       `json:"serve_requests,omitempty"`
}

type benchReport struct {
	Name     string            `json:"name"`
	UnixTime int64             `json:"unix_time"`
	Config   benchConfig       `json:"config"`
	WallMS   int64             `json:"wall_ms"`
	Results  interface{}       `json:"results"`
	Metrics  *metrics.Snapshot `json:"metrics"`
}

func main() {
	var (
		out        = flag.String("out", ".", "directory for BENCH_<name>.json files")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		nodes      = flag.Int("nodes", 4096, "number of DHT nodes")
		graphs     = flag.Int("graphs", 10, "topology instances for fig7")
		bench      = flag.String("bench", "fig4,vsatime", "comma-separated benchmarks: fig4, fig7, vsatime, scale, faults, runtime, cluster, serve")
		scalesizes = flag.String("scalesizes", "64000,256000,1000000", "comma-separated virtual-server counts for the scale benchmark")
		runsizes   = flag.String("runtimesizes", "64000,256000", "comma-separated virtual-server counts for the runtime benchmark")
		faultnodes = flag.Int("faultnodes", 51200, "number of DHT nodes for the faults benchmark (51200 nodes = 256k VSs)")
		procs      = flag.Int("procs", 8, "process count for the cluster benchmark")
		crounds    = flag.Int("clusterrounds", 8, "balancing rounds for the cluster benchmark")
		ckills     = flag.Int("clusterkills", 3, "SIGKILLs injected by the cluster benchmark")
		lbdBin     = flag.String("lbd", "", "path to the lbd binary for the cluster benchmark (default: go build it into a temp dir)")
		servesizes = flag.String("servesizes", "4096", "comma-separated DHT node counts for the serve benchmark")
		servereqs  = flag.Int("serverequests", 1000000, "requests per serve-benchmark variant")
	)
	flag.Parse()
	sizes, err := parseSizes(*scalesizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbbench:", err)
		os.Exit(1)
	}
	rtSizes, err := parseSizes(*runsizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbbench:", err)
		os.Exit(1)
	}
	svSizes, err := parseSizes(*servesizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbbench:", err)
		os.Exit(1)
	}
	opts := benchOpts{
		out: *out, seed: *seed, nodes: *nodes, graphs: *graphs,
		scaleSizes: sizes, runtimeSizes: rtSizes,
		faultNodes: *faultnodes,
		procs:      *procs, clusterRounds: *crounds, clusterKills: *ckills,
		lbdBin:     *lbdBin,
		serveSizes: svSizes, serveRequests: *servereqs,
	}
	for _, name := range strings.Split(*bench, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := runBench(name, opts); err != nil {
			fmt.Fprintln(os.Stderr, "lbbench:", err)
			os.Exit(1)
		}
	}
}

// benchOpts carries the flag values into runBench.
type benchOpts struct {
	out           string
	seed          int64
	nodes         int
	graphs        int
	scaleSizes    []int
	runtimeSizes  []int
	faultNodes    int
	procs         int
	clusterRounds int
	clusterKills  int
	lbdBin        string
	serveSizes    []int
	serveRequests int
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad scale size %q", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func runBench(name string, o benchOpts) error {
	out, seed, nodes, graphs := o.out, o.seed, o.nodes, o.graphs
	scaleSizes, runtimeSizes := o.scaleSizes, o.runtimeSizes
	reg := metrics.NewRegistry()
	cfg := benchConfig{Seed: seed, Nodes: nodes, Epsilon: 0.05}
	start := time.Now()
	var results interface{}
	var mergedSnap *metrics.Snapshot
	switch name {
	case "fig4":
		s := exp.DefaultSetup(seed)
		s.Nodes = nodes
		s.Metrics = reg
		inst, err := exp.Build(s)
		if err != nil {
			return err
		}
		res, err := inst.Balancer.RunRound()
		if err != nil {
			return err
		}
		results = map[string]interface{}{
			"heavy_before":      res.HeavyBefore,
			"heavy_after":       res.HeavyAfter,
			"light_before":      res.LightBefore,
			"moved_load":        res.MovedLoad,
			"moved_fraction":    res.MovedLoad / res.Global.L,
			"transfers":         len(res.Assignments),
			"unassigned_offers": res.UnassignedOffers,
			"tree_height":       res.TreeHeight,
		}
	case "fig7":
		cfg.Graphs = graphs
		dist, err := exp.MovedLoadDistribution(topology.TS5kLarge, graphs, seed, nodes, reg)
		if err != nil {
			return err
		}
		aware, ignorant := dist.MeanHops()
		results = map[string]interface{}{
			"graphs":                  dist.Graphs,
			"mean_hops_aware":         aware,
			"mean_hops_ignorant":      ignorant,
			"within2_aware":           dist.Aware.FractionWithin(2),
			"within2_ignorant":        dist.Ignorant.FractionWithin(2),
			"heavy_residual_aware":    dist.HeavyResidualAware,
			"heavy_residual_ignorant": dist.HeavyResidualIgnorant,
		}
	case "vsatime":
		sizes := []int{nodes / 8, nodes / 4, nodes / 2, nodes}
		rows, err := exp.VSATimes([]int{2, 8}, sizes, seed, reg)
		if err != nil {
			return err
		}
		results = rows
	case "scale":
		cfg.ScaleSizes = scaleSizes
		rows, err := runScale(seed, scaleSizes)
		if err != nil {
			return err
		}
		results = rows
	case "faults":
		// Message-level rounds with retransmission over the full
		// 256k-VS system by default; -faultnodes shrinks it for smoke
		// runs (ci.sh runs the small size twice to pin determinism).
		nodes = o.faultNodes
		cfg.Nodes = nodes
		cfg.DropRates = faultRates
		rows, err := exp.FaultSweep(seed, nodes, faultRates, 6)
		if err != nil {
			return err
		}
		part, err := exp.PartitionRecovery(seed, nodes, 2, 6)
		if err != nil {
			return err
		}
		results = map[string]interface{}{
			"drop_sweep":         rows,
			"partition_recovery": part,
		}
	case "runtime":
		cfg.RuntimeSizes = runtimeSizes
		rows, err := runRuntime(seed, runtimeSizes)
		if err != nil {
			return err
		}
		results = rows
	case "cluster":
		cfg.Nodes = 0
		cfg.Procs = o.procs
		cfg.Rounds = o.clusterRounds
		cfg.Kills = o.clusterKills
		report, snap, err := runCluster(seed, o)
		if err != nil {
			return err
		}
		results = report
		mergedSnap = snap
	case "serve":
		cfg.Nodes = 0
		cfg.ServeSizes = o.serveSizes
		cfg.ServeReqs = o.serveRequests
		rows, err := runServe(seed, o.serveSizes, o.serveRequests, reg)
		if err != nil {
			return err
		}
		results = rows
	default:
		return fmt.Errorf("unknown benchmark %q (want fig4, fig7, vsatime, scale, faults, runtime, cluster, serve)", name)
	}
	wall := time.Since(start)

	snap := reg.Snapshot()
	if mergedSnap != nil {
		// The cluster benchmark's metrics come merged from the daemons'
		// /metrics endpoints, not from this process's registry.
		snap = *mergedSnap
	}
	report := benchReport{
		Name:     name,
		UnixTime: time.Now().Unix(),
		Config:   cfg,
		WallMS:   wall.Milliseconds(),
		Results:  results,
		Metrics:  &snap,
	}
	path := filepath.Join(out, "BENCH_"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("lbbench: %s done in %d ms -> %s\n", name, report.WallMS, path)
	return nil
}

// faultRates is the drop-rate grid of the faults benchmark, matching
// `lbsim -fig faults`.
var faultRates = []float64{0, 0.05, 0.10, 0.20, 0.30}

// runServe replays the tail-latency serving sweep at each ring size and
// enforces the two claims the committed BENCH_serve.json exists to pin:
// interleaved balancing strictly improves the service tail over the
// balancer-off baseline on the same plan, and the hot-path lookup cache
// cuts mean overlay hops against the uncached variant. The gate only
// arms at >= 100k requests — below that (smoke runs) the tail is too
// noisy to assert on.
func runServe(seed int64, sizes []int, requests int, reg *metrics.Registry) ([]exp.ServeRow, error) {
	var all []exp.ServeRow
	for _, n := range sizes {
		s := exp.DefaultServeSetup(seed)
		s.Nodes = n
		s.Requests = requests
		s.Metrics = reg
		rows, err := exp.ServeSweep(s)
		if err != nil {
			return nil, err
		}
		if requests >= 100_000 {
			if err := checkServeRows(rows); err != nil {
				return nil, fmt.Errorf("serve acceptance at %d nodes: %w", n, err)
			}
		}
		all = append(all, rows...)
	}
	return all, nil
}

// checkServeRows asserts the balancer-on vs balancer-off tail contrast
// and the cached vs uncached hop contrast across one size's variants.
func checkServeRows(rows []exp.ServeRow) error {
	byName := map[string]exp.ServeRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	off, on, nocache := byName["balancer-off"], byName["balancer-on"], byName["balancer-on-nocache"]
	if off.Report == nil || on.Report == nil || nocache.Report == nil {
		return fmt.Errorf("missing variant in sweep output")
	}
	if on.Service.P99 >= off.Service.P99 {
		return fmt.Errorf("balancer-on service p99 %.0f not below balancer-off %.0f", on.Service.P99, off.Service.P99)
	}
	if on.Service.P999 >= off.Service.P999 {
		return fmt.Errorf("balancer-on service p999 %.0f not below balancer-off %.0f", on.Service.P999, off.Service.P999)
	}
	if on.MeanHops >= nocache.MeanHops {
		return fmt.Errorf("cached mean hops %.3f not below uncached %.3f", on.MeanHops, nocache.MeanHops)
	}
	return nil
}

// runCluster drives the multi-process chaos harness: lbd daemons over
// real TCP, SIGKILLs mid-round, supervisor restarts. The returned
// snapshot is the union of every daemon's /metrics endpoint (kills,
// restarts, wire retries, WAL replays), scraped just before teardown.
func runCluster(seed int64, o benchOpts) (*cluster.ChaosReport, *metrics.Snapshot, error) {
	bin := o.lbdBin
	if bin == "" {
		dir, err := os.MkdirTemp("", "lbbench-lbd")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "lbd")
		cmd := exec.Command("go", "build", "-o", bin, "p2plb/cmd/lbd")
		if out, err := cmd.CombinedOutput(); err != nil {
			return nil, nil, fmt.Errorf("building lbd: %v\n%s", err, out)
		}
	}
	dataDir, err := os.MkdirTemp("", "lbbench-cluster")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dataDir)
	report, err := cluster.RunChaos(cluster.ChaosConfig{
		Bin:     bin,
		DataDir: dataDir,
		Seed:    seed,
		Procs:   o.procs,
		Rounds:  o.clusterRounds,
		Kills:   o.clusterKills,
	})
	if err != nil {
		return nil, nil, err
	}
	return report, report.Metrics, nil
}

// scaleRow is one system size of the scale benchmark: wall times for
// the setup phases that used to be quadratic, one closed-form balancing
// round, and an incremental-repair probe after churning ~1% of the
// nodes. Skipped phases report -1 (never omitted, so a round that
// balances every heavy node — heavy_after 0 — stays distinguishable
// from a round that never ran).
type scaleRow struct {
	VServers      int   `json:"vservers"`
	Nodes         int   `json:"nodes"`
	BuildMS       int64 `json:"ring_build_ms"`
	LoadMS        int64 `json:"load_assign_ms"`
	TreeMS        int64 `json:"tree_build_ms"`
	RoundMS       int64 `json:"round_ms"`
	HeavyBefore   int   `json:"heavy_before"`
	HeavyAfter    int   `json:"heavy_after"`
	TreeNodes     int   `json:"tree_nodes"`
	TreeHeight    int   `json:"tree_height"`
	RepairMS      int64 `json:"repair_ms"`
	RepairChanges int   `json:"repair_changes"`
}

// checkTreeShape guards the compressed-tree regression: with chain
// collapse the KT tree must stay near log2(V) deep and near-linear in
// V, never the identifier-bits-deep, ~22-nodes-per-VS shape the naive
// dyadic recursion produced.
func checkTreeShape(tree *ktree.Tree, vss int) error {
	if lim := 2 * int(math.Ceil(math.Log2(float64(vss)))); tree.Height() > lim {
		return fmt.Errorf("scale %d VSs: tree height %d exceeds 2*log2(V) = %d — chain collapse regressed", vss, tree.Height(), lim)
	}
	if lim := 5 * vss; tree.NumNodes() > lim {
		return fmt.Errorf("scale %d VSs: %d KT nodes exceeds 5/VS — compression regressed", vss, tree.NumNodes())
	}
	return nil
}

// runScale times ring population (the bulk path exp.Build uses), load
// assignment, K-nary tree construction, one full balancing round, and
// an incremental repair after churn, at each requested virtual-server
// count, with 5 VSs per node as everywhere in the paper.
func runScale(seed int64, scaleSizes []int) ([]scaleRow, error) {
	const vsPerNode = 5
	profile := workload.GnutellaProfile()
	var rows []scaleRow
	for _, vsCount := range scaleSizes {
		n := vsCount / vsPerNode
		if n < 1 {
			return nil, fmt.Errorf("scale size %d smaller than one node's %d VSs", vsCount, vsPerNode)
		}
		eng := sim.NewEngine(seed)
		ring := chord.NewRing(eng, chord.Config{})
		start := time.Now()
		ring.BulkAddNodes(n, vsPerNode,
			func(int) topology.NodeID { return -1 },
			func(int) float64 { return profile.Sample(eng.Rand()) })
		row := scaleRow{VServers: ring.NumVServers(), Nodes: n,
			BuildMS: time.Since(start).Milliseconds(),
			RoundMS: -1, HeavyBefore: -1, HeavyAfter: -1, RepairMS: -1}

		mu := float64(n) * 100
		model := workload.Gaussian{Mu: mu, Sigma: mu / 200}
		start = time.Now()
		for _, vs := range ring.VServers() {
			vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
		}
		row.LoadMS = time.Since(start).Milliseconds()

		start = time.Now()
		tree, err := ktree.New(ring, 2)
		if err != nil {
			return nil, err
		}
		if err := tree.Build(); err != nil {
			return nil, err
		}
		row.TreeMS = time.Since(start).Milliseconds()
		row.TreeNodes = tree.NumNodes()
		row.TreeHeight = tree.Height()
		if err := checkTreeShape(tree, ring.NumVServers()); err != nil {
			return nil, err
		}

		bal, err := core.NewBalancer(ring, tree, core.Config{Epsilon: 0.05})
		if err != nil {
			return nil, err
		}
		start = time.Now()
		res, err := bal.RunRound()
		if err != nil {
			return nil, err
		}
		row.RoundMS = time.Since(start).Milliseconds()
		row.HeavyBefore = res.HeavyBefore
		row.HeavyAfter = res.HeavyAfter

		// Incremental-repair probe: churn ~1% of the nodes, repair, and
		// verify the repaired tree is structurally sound.
		churn := n / 100
		if churn < 1 {
			churn = 1
		}
		alive := ring.AliveNodes()
		for i := 0; i < churn && i < len(alive); i++ {
			ring.RemoveNode(alive[i])
		}
		for i := 0; i < churn; i++ {
			ring.AddNode(-1, profile.Sample(eng.Rand()), vsPerNode)
		}
		start = time.Now()
		changes, err := tree.Repair()
		if err != nil {
			return nil, err
		}
		row.RepairMS = time.Since(start).Milliseconds()
		row.RepairChanges = changes
		tree.CheckInvariants()

		rows = append(rows, row)
		fmt.Printf("lbbench: scale %d VSs: build %d ms, loads %d ms, tree %d ms (%d KT nodes, height %d), round %d ms, repair %d ms (%d changes)\n",
			row.VServers, row.BuildMS, row.LoadMS, row.TreeMS, row.TreeNodes, row.TreeHeight, row.RoundMS, row.RepairMS, row.RepairChanges)
	}
	return rows, nil
}

// runtimeRow compares the two executors that drive the internal/lbnode
// state machines over the same system: the deterministic-sim driver
// (internal/protocol, every message an engine event) and the concurrent
// channel executor (internal/livenet, goroutine per subtree). Each runs
// one full balancing round on its own identically-seeded ring, since a
// round mutates VS ownership.
type runtimeRow struct {
	VServers          int   `json:"vservers"`
	Nodes             int   `json:"nodes"`
	ProtocolMS        int64 `json:"protocol_round_ms"`
	ProtocolTransfers int   `json:"protocol_transfers"`
	LivenetMS         int64 `json:"livenet_round_ms"`
	LivenetTransfers  int   `json:"livenet_transfers"`
}

// runtimeFixture builds the proximity-ignorant loaded ring and KT tree
// the runtime benchmark rounds run over, 5 VSs per node as in runScale.
func runtimeFixture(seed int64, vsCount int) (*chord.Ring, *ktree.Tree, error) {
	const vsPerNode = 5
	n := vsCount / vsPerNode
	if n < 1 {
		return nil, nil, fmt.Errorf("runtime size %d smaller than one node's %d VSs", vsCount, vsPerNode)
	}
	profile := workload.GnutellaProfile()
	eng := sim.NewEngine(seed)
	ring := chord.NewRing(eng, chord.Config{})
	ring.BulkAddNodes(n, vsPerNode,
		func(int) topology.NodeID { return -1 },
		func(int) float64 { return profile.Sample(eng.Rand()) })
	mu := float64(n) * 100
	model := workload.Gaussian{Mu: mu, Sigma: mu / 200}
	for _, vs := range ring.VServers() {
		vs.Load = model.Load(eng.Rand(), ring.RegionOf(vs).Fraction())
	}
	tree, err := ktree.New(ring, 2)
	if err != nil {
		return nil, nil, err
	}
	if err := tree.Build(); err != nil {
		return nil, nil, err
	}
	return ring, tree, nil
}

// runRuntime times one protocol round and one livenet round at each
// requested virtual-server count. The numbers are not an apples-to-apples
// horse race — the protocol executor also simulates per-message latency
// bookkeeping — but their ratio pins the relative executor overhead, and
// a jump in either is a regression in its driver, not the shared machines.
func runRuntime(seed int64, sizes []int) ([]runtimeRow, error) {
	coreCfg := core.Config{Epsilon: 0.05}
	var rows []runtimeRow
	for _, vsCount := range sizes {
		ring, tree, err := runtimeFixture(seed, vsCount)
		if err != nil {
			return nil, err
		}
		row := runtimeRow{VServers: ring.NumVServers(), Nodes: len(ring.Nodes())}

		r, err := protocol.NewRunner(ring, tree, protocol.Config{Core: coreCfg})
		if err != nil {
			return nil, err
		}
		var res *protocol.Result
		var resErr error
		start := time.Now()
		if err := r.StartRound(func(out *protocol.Result, err error) { res, resErr = out, err }); err != nil {
			return nil, err
		}
		ring.Engine().Run()
		row.ProtocolMS = time.Since(start).Milliseconds()
		if resErr != nil {
			return nil, resErr
		}
		if res == nil {
			return nil, fmt.Errorf("runtime %d VSs: protocol round never completed", vsCount)
		}
		row.ProtocolTransfers = len(res.Assignments)

		// A fresh identically-seeded ring: the protocol round above has
		// already moved VSs on the first one.
		ring, tree, err = runtimeFixture(seed, vsCount)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		lres, err := livenet.RunRound(ring, tree, coreCfg)
		if err != nil {
			return nil, err
		}
		row.LivenetMS = time.Since(start).Milliseconds()
		row.LivenetTransfers = len(lres.Assignments)
		if err := sameTransferSet(res.Assignments, lres.Assignments); err != nil {
			return nil, fmt.Errorf("runtime %d VSs: executors diverged: %w", vsCount, err)
		}

		rows = append(rows, row)
		fmt.Printf("lbbench: runtime %d VSs: protocol %d ms (%d transfers), livenet %d ms (%d transfers)\n",
			row.VServers, row.ProtocolMS, row.ProtocolTransfers, row.LivenetMS, row.LivenetTransfers)
	}
	return rows, nil
}

// sameTransferSet verifies the two executors produced the identical
// transfer set — same virtual servers, same endpoints, same loads —
// with pairs identified by value (VS ID and node indices) so the check
// works across the two independently built ring instances.
func sameTransferSet(proto []core.Assignment, live []core.Pair) error {
	if len(proto) != len(live) {
		return fmt.Errorf("protocol moved %d VSs, livenet moved %d", len(proto), len(live))
	}
	seen := make(map[string]float64, len(proto))
	for _, p := range proto {
		seen[fmt.Sprintf("%v:%d->%d", p.VS.ID, p.From.Index, p.To.Index)] = p.Load
	}
	for _, p := range live {
		k := fmt.Sprintf("%v:%d->%d", p.VS.ID, p.From.Index, p.To.Index)
		load, ok := seen[k]
		if !ok {
			return fmt.Errorf("livenet pair %s has no protocol counterpart", k)
		}
		if load != p.Load {
			return fmt.Errorf("pair %s: protocol moved %v load, livenet %v", k, load, p.Load)
		}
		delete(seen, k)
	}
	return nil
}

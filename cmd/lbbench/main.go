// Command lbbench runs the figure drivers as timed benchmarks and
// writes machine-readable result files, one per benchmark, named
// BENCH_<name>.json in the output directory.
//
// Usage:
//
//	lbbench                                  # fig4 and vsatime
//	lbbench -bench fig4,fig7,vsatime -out d  # add the fig 7 sweep
//
// Each BENCH_<name>.json holds:
//
//	{
//	  "name":      "fig4",
//	  "unix_time": 1722816000,          // run timestamp (seconds)
//	  "config":    {"seed":1, "nodes":4096, "graphs":10, "epsilon":0.05},
//	  "wall_ms":   1234,                // end-to-end driver wall time
//	  "results":   {...},               // benchmark-specific outcome
//	  "metrics":   {...}                // metrics.Snapshot of the run
//	}
//
// The metrics object is the same snapshot `lbsim -metrics` emits:
// counters (msg.*, core.*), histograms (chord.lookup.*, core.phase.*)
// and series, so regressions in message counts or phase times are
// diffable across commits, not just wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"p2plb/internal/exp"
	"p2plb/internal/metrics"
	"p2plb/internal/topology"
)

type benchConfig struct {
	Seed    int64   `json:"seed"`
	Nodes   int     `json:"nodes"`
	Graphs  int     `json:"graphs,omitempty"`
	Epsilon float64 `json:"epsilon"`
}

type benchReport struct {
	Name     string            `json:"name"`
	UnixTime int64             `json:"unix_time"`
	Config   benchConfig       `json:"config"`
	WallMS   int64             `json:"wall_ms"`
	Results  interface{}       `json:"results"`
	Metrics  *metrics.Snapshot `json:"metrics"`
}

func main() {
	var (
		out    = flag.String("out", ".", "directory for BENCH_<name>.json files")
		seed   = flag.Int64("seed", 1, "base RNG seed")
		nodes  = flag.Int("nodes", 4096, "number of DHT nodes")
		graphs = flag.Int("graphs", 10, "topology instances for fig7")
		bench  = flag.String("bench", "fig4,vsatime", "comma-separated benchmarks: fig4, fig7, vsatime")
	)
	flag.Parse()
	for _, name := range strings.Split(*bench, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := runBench(name, *out, *seed, *nodes, *graphs); err != nil {
			fmt.Fprintln(os.Stderr, "lbbench:", err)
			os.Exit(1)
		}
	}
}

func runBench(name, out string, seed int64, nodes, graphs int) error {
	reg := metrics.NewRegistry()
	cfg := benchConfig{Seed: seed, Nodes: nodes, Epsilon: 0.05}
	start := time.Now()
	var results interface{}
	switch name {
	case "fig4":
		s := exp.DefaultSetup(seed)
		s.Nodes = nodes
		s.Metrics = reg
		inst, err := exp.Build(s)
		if err != nil {
			return err
		}
		res, err := inst.Balancer.RunRound()
		if err != nil {
			return err
		}
		results = map[string]interface{}{
			"heavy_before":      res.HeavyBefore,
			"heavy_after":       res.HeavyAfter,
			"light_before":      res.LightBefore,
			"moved_load":        res.MovedLoad,
			"moved_fraction":    res.MovedLoad / res.Global.L,
			"transfers":         len(res.Assignments),
			"unassigned_offers": res.UnassignedOffers,
			"tree_height":       res.TreeHeight,
		}
	case "fig7":
		cfg.Graphs = graphs
		dist, err := exp.MovedLoadDistribution(topology.TS5kLarge, graphs, seed, nodes, reg)
		if err != nil {
			return err
		}
		aware, ignorant := dist.MeanHops()
		results = map[string]interface{}{
			"graphs":                  dist.Graphs,
			"mean_hops_aware":         aware,
			"mean_hops_ignorant":      ignorant,
			"within2_aware":           dist.Aware.FractionWithin(2),
			"within2_ignorant":        dist.Ignorant.FractionWithin(2),
			"heavy_residual_aware":    dist.HeavyResidualAware,
			"heavy_residual_ignorant": dist.HeavyResidualIgnorant,
		}
	case "vsatime":
		sizes := []int{nodes / 8, nodes / 4, nodes / 2, nodes}
		rows, err := exp.VSATimes([]int{2, 8}, sizes, seed, reg)
		if err != nil {
			return err
		}
		results = rows
	default:
		return fmt.Errorf("unknown benchmark %q (want fig4, fig7, vsatime)", name)
	}
	wall := time.Since(start)

	snap := reg.Snapshot()
	report := benchReport{
		Name:     name,
		UnixTime: time.Now().Unix(),
		Config:   cfg,
		WallMS:   wall.Milliseconds(),
		Results:  results,
		Metrics:  &snap,
	}
	path := filepath.Join(out, "BENCH_"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Printf("lbbench: %s done in %d ms -> %s\n", name, report.WallMS, path)
	return nil
}
